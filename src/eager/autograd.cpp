#include "eager/autograd.hpp"

#include <cmath>
#include <unordered_set>

namespace npad::eager {

void Node::accumulate(const Tensor& g) {
  if (!grad.defined()) {
    grad = Tensor::zeros(value.shape());
  }
  double* pg = grad.ptr();
  const double* ps = g.ptr();
  for (int64_t i = 0; i < grad.numel(); ++i) pg[i] += ps[i];
}

void backward(const Var& root) {
  // Topological order by iterative DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> seen;
  std::vector<std::pair<Node*, size_t>> stack{{root.node().get(), 0}};
  seen.insert(root.node().get());
  while (!stack.empty()) {
    auto& [n, i] = stack.back();
    if (i < n->parents.size()) {
      Node* p = n->parents[i++].get();
      if (!seen.count(p)) {
        seen.insert(p);
        stack.emplace_back(p, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  root.node()->accumulate(Tensor::full(root.value().shape(), 1.0));
  for (size_t i = order.size(); i-- > 0;) {
    Node* n = order[i];
    if (n->backward_fn && n->grad.defined()) n->backward_fn(*n);
  }
}

namespace {

Var make(Tensor value, std::vector<Var> parents, std::function<void(Node&)> bw) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  for (const auto& p : parents) {
    n->requires_grad = n->requires_grad || p.requires_grad();
    n->parents.push_back(p.node());
  }
  if (n->requires_grad) n->backward_fn = std::move(bw);
  return Var::from_node(std::move(n));
}

} // namespace

Var add(const Var& a, const Var& b) {
  return make(t_add(a.value(), b.value()), {a, b}, [](Node& n) {
    n.parents[0]->accumulate(n.grad);
    n.parents[1]->accumulate(n.grad);
  });
}

Var sub(const Var& a, const Var& b) {
  return make(t_sub(a.value(), b.value()), {a, b}, [](Node& n) {
    n.parents[0]->accumulate(n.grad);
    n.parents[1]->accumulate(t_neg(n.grad));
  });
}

Var mul(const Var& a, const Var& b) {
  return make(t_mul(a.value(), b.value()), {a, b}, [](Node& n) {
    n.parents[0]->accumulate(t_mul(n.grad, n.parents[1]->value));
    n.parents[1]->accumulate(t_mul(n.grad, n.parents[0]->value));
  });
}

Var scale(const Var& a, double s) {
  return make(t_scale(a.value(), s), {a},
              [s](Node& n) { n.parents[0]->accumulate(t_scale(n.grad, s)); });
}

Var add_scalar(const Var& a, double s) {
  return make(t_add_scalar(a.value(), s), {a},
              [](Node& n) { n.parents[0]->accumulate(n.grad); });
}

Var neg(const Var& a) {
  return make(t_neg(a.value()), {a},
              [](Node& n) { n.parents[0]->accumulate(t_neg(n.grad)); });
}

Var exp(const Var& a) {
  return make(t_exp(a.value()), {a},
              [](Node& n) { n.parents[0]->accumulate(t_mul(n.grad, n.value)); });
}

Var log(const Var& a) {
  return make(t_log(a.value()), {a}, [](Node& n) {
    Tensor inv = n.parents[0]->value;
    Tensor g(n.grad.shape());
    for (int64_t i = 0; i < g.numel(); ++i) g.ptr()[i] = n.grad.ptr()[i] / inv.ptr()[i];
    n.parents[0]->accumulate(g);
  });
}

Var tanh(const Var& a) {
  return make(t_tanh(a.value()), {a}, [](Node& n) {
    Tensor g(n.grad.shape());
    for (int64_t i = 0; i < g.numel(); ++i) {
      const double t = n.value.ptr()[i];
      g.ptr()[i] = n.grad.ptr()[i] * (1.0 - t * t);
    }
    n.parents[0]->accumulate(g);
  });
}

Var sigmoid(const Var& a) {
  return make(t_sigmoid(a.value()), {a}, [](Node& n) {
    Tensor g(n.grad.shape());
    for (int64_t i = 0; i < g.numel(); ++i) {
      const double s = n.value.ptr()[i];
      g.ptr()[i] = n.grad.ptr()[i] * s * (1.0 - s);
    }
    n.parents[0]->accumulate(g);
  });
}

Var square(const Var& a) {
  return make(t_square(a.value()), {a}, [](Node& n) {
    Tensor g(n.grad.shape());
    for (int64_t i = 0; i < g.numel(); ++i) {
      g.ptr()[i] = 2.0 * n.grad.ptr()[i] * n.parents[0]->value.ptr()[i];
    }
    n.parents[0]->accumulate(g);
  });
}

Var matmul(const Var& a, const Var& b) {
  return make(t_matmul(a.value(), b.value()), {a, b}, [](Node& n) {
    // dA = G B^T ; dB = A^T G
    n.parents[0]->accumulate(t_matmul(n.grad, t_transpose(n.parents[1]->value)));
    n.parents[1]->accumulate(t_matmul(t_transpose(n.parents[0]->value), n.grad));
  });
}

Var transpose(const Var& a) {
  return make(t_transpose(a.value()), {a},
              [](Node& n) { n.parents[0]->accumulate(t_transpose(n.grad)); });
}

Var add_rowvec(const Var& a, const Var& v) {
  return make(t_add_rowvec(a.value(), v.value()), {a, v}, [](Node& n) {
    n.parents[0]->accumulate(n.grad);
    n.parents[1]->accumulate(t_sum_cols(n.grad));
  });
}

Var add_colvec(const Var& a, const Var& v) {
  return make(t_add_colvec(a.value(), v.value()), {a, v}, [](Node& n) {
    n.parents[0]->accumulate(n.grad);
    n.parents[1]->accumulate(t_sum_rows(n.grad));
  });
}

Var sum(const Var& a) {
  Tensor s({1});
  s.ptr()[0] = t_sum(a.value());
  return make(std::move(s), {a}, [](Node& n) {
    n.parents[0]->accumulate(Tensor::full(n.parents[0]->value.shape(), n.grad.ptr()[0]));
  });
}

Var sum_rows(const Var& a) {
  return make(t_sum_rows(a.value()), {a}, [](Node& n) {
    const int64_t m = n.parents[0]->value.dim(0), c = n.parents[0]->value.dim(1);
    Tensor g({m, c});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < c; ++j) g.ptr()[i * c + j] = n.grad.ptr()[i];
    }
    n.parents[0]->accumulate(g);
  });
}

Var sum_cols(const Var& a) {
  return make(t_sum_cols(a.value()), {a}, [](Node& n) {
    const int64_t m = n.parents[0]->value.dim(0), c = n.parents[0]->value.dim(1);
    Tensor g({m, c});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < c; ++j) g.ptr()[i * c + j] = n.grad.ptr()[j];
    }
    n.parents[0]->accumulate(g);
  });
}

Var min_rows(const Var& a) {
  auto [mins, arg] = t_min_rows(a.value());
  Tensor argk = arg;
  return make(std::move(mins), {a}, [argk](Node& n) {
    const int64_t m = n.parents[0]->value.dim(0), c = n.parents[0]->value.dim(1);
    Tensor g({m, c});
    for (int64_t i = 0; i < m; ++i) {
      g.ptr()[i * c + static_cast<int64_t>(argk.ptr()[i])] = n.grad.ptr()[i];
    }
    n.parents[0]->accumulate(g);
  });
}

Var logsumexp_rows(const Var& a) {
  Tensor lse = t_logsumexp_rows(a.value());
  Tensor keep = lse;
  return make(std::move(lse), {a}, [keep](Node& n) {
    const int64_t m = n.parents[0]->value.dim(0), c = n.parents[0]->value.dim(1);
    const double* pa = n.parents[0]->value.ptr();
    Tensor g({m, c});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < c; ++j) {
        g.ptr()[i * c + j] = n.grad.ptr()[i] * std::exp(pa[i * c + j] - keep.ptr()[i]);
      }
    }
    n.parents[0]->accumulate(g);
  });
}

} // namespace npad::eager
