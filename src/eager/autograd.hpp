#pragma once

// Dynamic-graph (define-by-run) autograd over eager tensors — the structural
// analogue of PyTorch's AutoGrad used as the Tables 3-6 baseline. Every op
// materializes its output and records an op-granularity backward closure;
// `backward` topologically sorts the graph and accumulates gradients.

#include <functional>
#include <memory>

#include "eager/tensor.hpp"

namespace npad::eager {

struct Node {
  Tensor value;
  Tensor grad;  // allocated on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward_fn;  // pushes grad into parents

  void accumulate(const Tensor& g);
};

class Var {
public:
  Var() = default;
  explicit Var(Tensor v, bool requires_grad = false)
      : n_(std::make_shared<Node>()) {
    n_->value = std::move(v);
    n_->requires_grad = requires_grad;
  }

  bool defined() const { return n_ != nullptr; }
  const Tensor& value() const { return n_->value; }
  const Tensor& grad() const { return n_->grad; }
  bool requires_grad() const { return n_ && n_->requires_grad; }
  std::shared_ptr<Node> node() const { return n_; }

  static Var from_node(std::shared_ptr<Node> n) {
    Var v;
    v.n_ = std::move(n);
    return v;
  }

private:
  std::shared_ptr<Node> n_;
};

// Runs reverse accumulation from a scalar (1-element) root with seed 1.
void backward(const Var& root);

// ------------------------------------------------------------- operators ---
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var scale(const Var& a, double s);
Var add_scalar(const Var& a, double s);
Var neg(const Var& a);
Var exp(const Var& a);
Var log(const Var& a);
Var tanh(const Var& a);
Var sigmoid(const Var& a);
Var square(const Var& a);
Var matmul(const Var& a, const Var& b);
Var transpose(const Var& a);
Var add_rowvec(const Var& a, const Var& v);
Var add_colvec(const Var& a, const Var& v);
Var sum(const Var& a);           // -> [1]
Var sum_rows(const Var& a);      // [m,n] -> [m]
Var sum_cols(const Var& a);      // [m,n] -> [n]
Var min_rows(const Var& a);      // [m,n] -> [m] (subgradient at argmin)
Var logsumexp_rows(const Var& a);

} // namespace npad::eager
