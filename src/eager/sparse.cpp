#include "eager/sparse.hpp"

namespace npad::eager {

Coo to_coo(const Csr& a) {
  Coo c;
  c.rows = a.rows;
  c.cols = a.cols;
  c.values = a.values;
  c.col_idx = a.col_idx;
  c.row_idx.reserve(a.values.size());
  for (int64_t i = 0; i < a.rows; ++i) {
    for (int64_t k = a.row_ptr[static_cast<size_t>(i)]; k < a.row_ptr[static_cast<size_t>(i) + 1];
         ++k) {
      c.row_idx.push_back(i);
    }
  }
  return c;
}

Csr random_csr(support::Rng& rng, int64_t rows, int64_t cols, int64_t nnz_per_row) {
  Csr a;
  a.rows = rows;
  a.cols = cols;
  a.row_ptr.push_back(0);
  for (int64_t i = 0; i < rows; ++i) {
    // Random strictly-increasing column subset.
    std::vector<int64_t> cs;
    for (int64_t k = 0; k < nnz_per_row; ++k) cs.push_back(rng.uniform_int(cols));
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
    for (int64_t c : cs) {
      a.col_idx.push_back(c);
      a.values.push_back(rng.uniform(0.1, 1.0));
    }
    a.row_ptr.push_back(static_cast<int64_t>(a.col_idx.size()));
  }
  return a;
}

Var coo_matmul(const Coo& a, const Var& b) {
  const int64_t m = a.rows, n = b.value().dim(1);
  Tensor out({m, n});
  const double* pb = b.value().ptr();
  double* po = out.ptr();
  for (int64_t e = 0; e < a.nnz(); ++e) {
    const int64_t i = a.row_idx[static_cast<size_t>(e)];
    const int64_t k = a.col_idx[static_cast<size_t>(e)];
    const double v = a.values[static_cast<size_t>(e)];
    for (int64_t j = 0; j < n; ++j) po[i * n + j] += v * pb[k * n + j];
  }
  auto node = std::make_shared<Node>();
  node->value = std::move(out);
  node->requires_grad = b.requires_grad();
  node->parents.push_back(b.node());
  if (node->requires_grad) {
    Coo ac = a;
    node->backward_fn = [ac, n](Node& nd) {
      // dB[k, j] += v * G[i, j]
      Tensor g(nd.parents[0]->value.shape());
      const double* pg = nd.grad.ptr();
      for (int64_t e = 0; e < ac.nnz(); ++e) {
        const int64_t i = ac.row_idx[static_cast<size_t>(e)];
        const int64_t k = ac.col_idx[static_cast<size_t>(e)];
        const double v = ac.values[static_cast<size_t>(e)];
        for (int64_t j = 0; j < n; ++j) g.ptr()[k * n + j] += v * pg[i * n + j];
      }
      nd.parents[0]->accumulate(g);
    };
  }
  return Var::from_node(std::move(node));
}

std::vector<double> csr_row_sqnorms(const Csr& a) {
  std::vector<double> out(static_cast<size_t>(a.rows), 0.0);
  for (int64_t i = 0; i < a.rows; ++i) {
    for (int64_t k = a.row_ptr[static_cast<size_t>(i)]; k < a.row_ptr[static_cast<size_t>(i) + 1];
         ++k) {
      out[static_cast<size_t>(i)] += a.values[static_cast<size_t>(k)] * a.values[static_cast<size_t>(k)];
    }
  }
  return out;
}

} // namespace npad::eager
