#pragma once

// Dense f64 tensors with eager, materializing kernels — the building block
// of the PyTorch-style baseline (npad::eager). Every op allocates its
// result (no fusion), exactly like eager frameworks; matmul is blocked and
// parallel.

#include <cassert>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace npad::eager {

class Tensor {
public:
  Tensor() = default;
  explicit Tensor(std::vector<int64_t> shape)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<double>>(static_cast<size_t>(numel_of(shape_)))) {}

  static Tensor zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int64_t> shape, double v) {
    Tensor t(std::move(shape));
    std::fill(t.data().begin(), t.data().end(), v);
    return t;
  }
  static Tensor from(std::vector<double> vals, std::vector<int64_t> shape) {
    Tensor t;
    t.shape_ = std::move(shape);
    assert(static_cast<int64_t>(vals.size()) == numel_of(t.shape_));
    t.data_ = std::make_shared<std::vector<double>>(std::move(vals));
    return t;
  }
  static Tensor randn(support::Rng& rng, std::vector<int64_t> shape, double stddev = 1.0) {
    Tensor t(std::move(shape));
    for (auto& x : t.data()) x = stddev * rng.normal();
    return t;
  }

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t numel() const { return numel_of(shape_); }
  int64_t dim(size_t i) const { return shape_[i]; }
  bool defined() const { return data_ != nullptr; }

  std::vector<double>& data() { return *data_; }
  const std::vector<double>& data() const { return *data_; }
  double* ptr() { return data_->data(); }
  const double* ptr() const { return data_->data(); }
  double item() const { return (*data_)[0]; }

  static int64_t numel_of(const std::vector<int64_t>& s) {
    return std::accumulate(s.begin(), s.end(), int64_t{1}, std::multiplies<>());
  }

private:
  std::vector<int64_t> shape_;
  std::shared_ptr<std::vector<double>> data_;
};

// ------------------------------- raw kernels (shared with autograd) --------

Tensor t_add(const Tensor& a, const Tensor& b);
Tensor t_sub(const Tensor& a, const Tensor& b);
Tensor t_mul(const Tensor& a, const Tensor& b);
Tensor t_scale(const Tensor& a, double s);
Tensor t_add_scalar(const Tensor& a, double s);
Tensor t_neg(const Tensor& a);
Tensor t_exp(const Tensor& a);
Tensor t_log(const Tensor& a);
Tensor t_tanh(const Tensor& a);
Tensor t_sigmoid(const Tensor& a);
Tensor t_square(const Tensor& a);
// Matrix product a[m,k] x b[k,n] (blocked, parallel).
Tensor t_matmul(const Tensor& a, const Tensor& b);
Tensor t_transpose(const Tensor& a);  // [m,n] -> [n,m]
// Broadcast a row vector v[n] over the rows of a[m,n].
Tensor t_add_rowvec(const Tensor& a, const Tensor& v);
// Broadcast a column vector v[m] over the columns of a[m,n].
Tensor t_add_colvec(const Tensor& a, const Tensor& v);
double t_sum(const Tensor& a);
Tensor t_sum_rows(const Tensor& a);  // [m,n] -> [m]
Tensor t_sum_cols(const Tensor& a);  // [m,n] -> [n]
// Row-wise min and argmin: [m,n] -> ([m], [m] as double indices).
std::pair<Tensor, Tensor> t_min_rows(const Tensor& a);
Tensor t_logsumexp_rows(const Tensor& a);  // [m,n] -> [m]

} // namespace npad::eager
