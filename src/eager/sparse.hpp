#pragma once

// Sparse matrix support for the sparse k-means case study (Section 7.5):
// CSR for the npad IR implementations, COO for the eager baseline (the paper
// notes PyTorch AD forces COO). coo_matmul supports gradient flow to the
// dense operand only, matching torch.sparse.mm's "sparse gradient" usage in
// the paper's setup (data is constant, centroids are differentiated).

#include <cstdint>
#include <vector>

#include "eager/autograd.hpp"
#include "support/rng.hpp"

namespace npad::eager {

struct Csr {
  int64_t rows = 0, cols = 0;
  std::vector<int64_t> row_ptr;  // rows+1
  std::vector<int64_t> col_idx;  // nnz
  std::vector<double> values;    // nnz
  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
};

struct Coo {
  int64_t rows = 0, cols = 0;
  std::vector<int64_t> row_idx, col_idx;
  std::vector<double> values;
  int64_t nnz() const { return static_cast<int64_t>(values.size()); }
};

Coo to_coo(const Csr& a);

// Random CSR matrix with ~nnz_per_row nonzeros per row (synthetic stand-in
// for the MovieLens / NYTimes / scRNA workloads; see DESIGN.md).
Csr random_csr(support::Rng& rng, int64_t rows, int64_t cols, int64_t nnz_per_row);

// Dense C[m,n] = A[m,k] (COO) * B[k,n]; gradient flows to B only.
Var coo_matmul(const Coo& a, const Var& b);

// Row-wise squared norms of a CSR matrix (constant, no gradient).
std::vector<double> csr_row_sqnorms(const Csr& a);

} // namespace npad::eager
