#include "eager/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "support/thread_pool.hpp"

namespace npad::eager {

namespace {

template <class F>
Tensor elementwise(const Tensor& a, F&& f) {
  Tensor out(a.shape());
  const double* pa = a.ptr();
  double* po = out.ptr();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

template <class F>
Tensor elementwise2(const Tensor& a, const Tensor& b, F&& f) {
  assert(a.shape() == b.shape());
  Tensor out(a.shape());
  const double* pa = a.ptr();
  const double* pb = b.ptr();
  double* po = out.ptr();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

} // namespace

Tensor t_add(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, [](double x, double y) { return x + y; });
}
Tensor t_sub(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, [](double x, double y) { return x - y; });
}
Tensor t_mul(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, [](double x, double y) { return x * y; });
}
Tensor t_scale(const Tensor& a, double s) {
  return elementwise(a, [s](double x) { return x * s; });
}
Tensor t_add_scalar(const Tensor& a, double s) {
  return elementwise(a, [s](double x) { return x + s; });
}
Tensor t_neg(const Tensor& a) {
  return elementwise(a, [](double x) { return -x; });
}
Tensor t_exp(const Tensor& a) {
  return elementwise(a, [](double x) { return std::exp(x); });
}
Tensor t_log(const Tensor& a) {
  return elementwise(a, [](double x) { return std::log(x); });
}
Tensor t_tanh(const Tensor& a) {
  return elementwise(a, [](double x) { return std::tanh(x); });
}
Tensor t_sigmoid(const Tensor& a) {
  return elementwise(a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor t_square(const Tensor& a) {
  return elementwise(a, [](double x) { return x * x; });
}

Tensor t_matmul(const Tensor& a, const Tensor& b) {
  assert(a.shape().size() == 2 && b.shape().size() == 2 && a.dim(1) == b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const double* pa = a.ptr();
  const double* pb = b.ptr();
  double* po = out.ptr();
  // i-k-j loop order: streaming access on b and out rows.
  support::parallel_for(m, 16, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      double* orow = po + i * n;
      std::fill(orow, orow + n, 0.0);
      for (int64_t kk = 0; kk < k; ++kk) {
        const double av = pa[i * k + kk];
        const double* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
  return out;
}

Tensor t_transpose(const Tensor& a) {
  assert(a.shape().size() == 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  const double* pa = a.ptr();
  double* po = out.ptr();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  return out;
}

Tensor t_add_rowvec(const Tensor& a, const Tensor& v) {
  assert(a.shape().size() == 2 && v.numel() == a.dim(1));
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(a.shape());
  const double* pa = a.ptr();
  const double* pv = v.ptr();
  double* po = out.ptr();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[i * n + j] = pa[i * n + j] + pv[j];
  }
  return out;
}

Tensor t_add_colvec(const Tensor& a, const Tensor& v) {
  assert(a.shape().size() == 2 && v.numel() == a.dim(0));
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(a.shape());
  const double* pa = a.ptr();
  const double* pv = v.ptr();
  double* po = out.ptr();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[i * n + j] = pa[i * n + j] + pv[i];
  }
  return out;
}

double t_sum(const Tensor& a) {
  const double* pa = a.ptr();
  double s = 0;
  for (int64_t i = 0; i < a.numel(); ++i) s += pa[i];
  return s;
}

Tensor t_sum_rows(const Tensor& a) {
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const double* pa = a.ptr();
  for (int64_t i = 0; i < m; ++i) {
    double s = 0;
    for (int64_t j = 0; j < n; ++j) s += pa[i * n + j];
    out.ptr()[i] = s;
  }
  return out;
}

Tensor t_sum_cols(const Tensor& a) {
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const double* pa = a.ptr();
  double* po = out.ptr();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) po[j] += pa[i * n + j];
  }
  return out;
}

std::pair<Tensor, Tensor> t_min_rows(const Tensor& a) {
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor mins({m}), arg({m});
  const double* pa = a.ptr();
  for (int64_t i = 0; i < m; ++i) {
    double best = pa[i * n];
    int64_t bi = 0;
    for (int64_t j = 1; j < n; ++j) {
      if (pa[i * n + j] < best) {
        best = pa[i * n + j];
        bi = j;
      }
    }
    mins.ptr()[i] = best;
    arg.ptr()[i] = static_cast<double>(bi);
  }
  return {mins, arg};
}

Tensor t_logsumexp_rows(const Tensor& a) {
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const double* pa = a.ptr();
  for (int64_t i = 0; i < m; ++i) {
    double mx = pa[i * n];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, pa[i * n + j]);
    double s = 0;
    for (int64_t j = 0; j < n; ++j) s += std::exp(pa[i * n + j] - mx);
    out.ptr()[i] = mx + std::log(s);
  }
  return out;
}

} // namespace npad::eager
