#pragma once

// Gradient verification utilities: central finite differences, full forward-
// mode Jacobian rows via jvp over the standard basis, and reverse-mode
// gradients via vjp. Used by the test suite (property tests on random
// programs) and by the ADBench-style benchmark harness.

#include <vector>

#include "ir/ast.hpp"
#include "runtime/interp.hpp"

namespace npad::ad {

// Gradient of result[0] (must be a scalar f64) with respect to every f64
// input, one flattened vector per differentiable parameter (in param order).
std::vector<std::vector<double>> numeric_gradients(const ir::Prog& p,
                                                   const std::vector<rt::Value>& args,
                                                   double eps = 1e-6,
                                                   rt::InterpOptions opts = {});

// Same gradient computed by the reverse-mode transformation (single pass).
std::vector<std::vector<double>> reverse_gradients(const ir::Prog& p,
                                                   const std::vector<rt::Value>& args,
                                                   rt::InterpOptions opts = {});

// Same gradient computed by forward mode (one jvp run per input component).
std::vector<std::vector<double>> forward_gradients(const ir::Prog& p,
                                                   const std::vector<rt::Value>& args,
                                                   rt::InterpOptions opts = {});

struct GradCheck {
  bool ok = false;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
};

// Compares reverse-mode gradients against central differences.
GradCheck check_gradients(const ir::Prog& p, const std::vector<rt::Value>& args,
                          double eps = 1e-6, double tol = 1e-4,
                          rt::InterpOptions opts = {});

// Compares two gradient sets (helper for fwd-vs-rev agreement tests).
GradCheck compare_gradients(const std::vector<std::vector<double>>& a,
                            const std::vector<std::vector<double>>& b, double tol = 1e-9);

} // namespace npad::ad
