#pragma once

// The paper's primary contribution, exposed as two program-to-program
// transformations (Section 2):
//
//   jvp : (P : R^n -> R^m)  ->  (P_jvp : R^n -> R^n -> R^m)
//     Forward mode. The transformed program takes the original arguments
//     followed by a tangent for every differentiable (f64) argument, and
//     returns the original results followed by the tangent of every
//     differentiable result.
//
//   vjp : (P : R^n -> R^m)  ->  (P_vjp : R^n -> R^m -> R^n)
//     Reverse mode via redundant execution (Section 4): no tape — every
//     scope's forward sweep is re-emitted when the return sweep enters it;
//     sequential loops checkpoint loop-variant variables; parallel
//     combinators are differentiated by the rewrite rules of Section 5
//     (map via accumulators, reduce/scan/reduce_by_index with specialized
//     rules for +, *, min/max, scatter via gather/zero-out).
//     The transformed program takes the original arguments followed by an
//     adjoint seed for every differentiable result, and returns the original
//     results followed by the adjoint of every differentiable argument.
//
// Both passes produce plain IR, so they compose: Hessian-vector products are
// jvp(vjp(P)) (used by the k-means Newton case study, Section 7.4).
//
// Preconditions: `while` loops must have been eliminated first
// (opt::bound_whiles) and strip-mining annotations expanded
// (opt::apply_stripmining); see opt/loopopt.hpp's prepare_for_ad.

#include "ir/ast.hpp"
#include "support/error.hpp"

namespace npad::ad {

// Non-differentiable constructs and AD-internal invariant violations. Part of
// the npad::Error taxonomy so servers can branch on the failure class.
struct ADError : ::npad::Error {
  using ::npad::Error::Error;
  const char* kind() const noexcept override { return "ADError"; }
};

// True for types that carry derivatives (f64 scalars/arrays/accumulators).
inline bool differentiable(const ir::Type& t) { return t.elem == ir::ScalarType::F64; }

ir::Prog jvp(const ir::Prog& p);
ir::Prog vjp(const ir::Prog& p);

} // namespace npad::ad
