#include "core/gradcheck.hpp"

#include <cmath>
#include <stdexcept>

#include "core/ad.hpp"

namespace npad::ad {

namespace {

using rt::ArrayVal;
using rt::Value;

bool diff_param(const ir::Param& p) { return differentiable(p.type); }

size_t flat_size(const Value& v) {
  if (rt::is_array(v)) return static_cast<size_t>(rt::as_array(v).elems());
  return 1;
}

double read_flat(const Value& v, size_t i) {
  if (rt::is_array(v)) return rt::as_array(v).get_f64(static_cast<int64_t>(i));
  return rt::as_f64(v);
}

Value perturbed(const Value& v, size_t i, double delta) {
  if (rt::is_array(v)) {
    ArrayVal c = rt::compact_copy(rt::as_array(v));
    c.set_f64(static_cast<int64_t>(i), c.get_f64(static_cast<int64_t>(i)) + delta);
    return c;
  }
  return rt::as_f64(v) + delta;
}

Value zero_like(const Value& v) {
  if (rt::is_array(v)) {
    const ArrayVal& a = rt::as_array(v);
    return ArrayVal::alloc(a.elem, a.shape);
  }
  return 0.0;
}

} // namespace

std::vector<std::vector<double>> numeric_gradients(const ir::Prog& p,
                                                   const std::vector<rt::Value>& args,
                                                   double eps, rt::InterpOptions opts) {
  rt::Interp in(opts);
  std::vector<std::vector<double>> grads;
  for (size_t pi = 0; pi < p.fn.params.size(); ++pi) {
    if (!diff_param(p.fn.params[pi])) continue;
    const size_t n = flat_size(args[pi]);
    std::vector<double> g(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Value> a1 = args, a2 = args;
      a1[pi] = perturbed(args[pi], i, eps);
      a2[pi] = perturbed(args[pi], i, -eps);
      const double f1 = rt::as_f64(in.run(p, a1)[0]);
      const double f2 = rt::as_f64(in.run(p, a2)[0]);
      g[i] = (f1 - f2) / (2 * eps);
    }
    grads.push_back(std::move(g));
  }
  return grads;
}

std::vector<std::vector<double>> reverse_gradients(const ir::Prog& p,
                                                   const std::vector<rt::Value>& args,
                                                   rt::InterpOptions opts) {
  rt::Interp in(opts);
  // Run the primal once to learn result shapes for zero seeds.
  std::vector<Value> primal = in.run(p, args);
  ir::Prog g = vjp(p);
  std::vector<Value> gargs = args;
  bool seeded = false;
  for (size_t ri = 0; ri < p.fn.rets.size(); ++ri) {
    if (!differentiable(p.fn.rets[ri])) continue;
    if (!seeded && p.fn.rets[ri].rank == 0) {
      gargs.emplace_back(1.0);
      seeded = true;
    } else {
      gargs.push_back(zero_like(primal[ri]));
    }
  }
  if (!seeded) throw std::runtime_error("reverse_gradients: no scalar f64 result to seed");
  std::vector<Value> out = in.run(g, gargs);
  std::vector<std::vector<double>> grads;
  size_t pos = p.fn.rets.size();
  for (size_t pi = 0; pi < p.fn.params.size(); ++pi) {
    if (!diff_param(p.fn.params[pi])) continue;
    const Value& gv = out[pos++];
    const size_t n = flat_size(args[pi]);
    std::vector<double> gvec(n);
    for (size_t i = 0; i < n; ++i) gvec[i] = read_flat(gv, i);
    grads.push_back(std::move(gvec));
  }
  return grads;
}

std::vector<std::vector<double>> forward_gradients(const ir::Prog& p,
                                                   const std::vector<rt::Value>& args,
                                                   rt::InterpOptions opts) {
  rt::Interp in(opts);
  ir::Prog j = jvp(p);
  // Locate the tangent of result 0 in the jvp outputs: original results come
  // first, then tangents of differentiable results in order.
  if (!differentiable(p.fn.rets[0]) || p.fn.rets[0].rank != 0) {
    throw std::runtime_error("forward_gradients: result[0] must be scalar f64");
  }
  const size_t tan_ix = p.fn.rets.size();
  std::vector<std::vector<double>> grads;
  for (size_t pi = 0; pi < p.fn.params.size(); ++pi) {
    if (!diff_param(p.fn.params[pi])) continue;
    grads.emplace_back(flat_size(args[pi]), 0.0);
  }
  // One jvp evaluation per basis direction.
  size_t gi = 0;
  for (size_t pi = 0; pi < p.fn.params.size(); ++pi) {
    if (!diff_param(p.fn.params[pi])) continue;
    const size_t n = flat_size(args[pi]);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Value> jargs = args;
      for (size_t qi = 0; qi < p.fn.params.size(); ++qi) {
        if (!diff_param(p.fn.params[qi])) continue;
        Value t = zero_like(args[qi]);
        if (qi == pi) t = perturbed(t, i, 1.0);
        jargs.push_back(std::move(t));
      }
      std::vector<Value> out = in.run(j, jargs);
      grads[gi][i] = rt::as_f64(out[tan_ix]);
    }
    ++gi;
  }
  return grads;
}

GradCheck compare_gradients(const std::vector<std::vector<double>>& a,
                            const std::vector<std::vector<double>>& b, double tol) {
  GradCheck r;
  r.ok = a.size() == b.size();
  for (size_t i = 0; r.ok && i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      r.ok = false;
      break;
    }
    for (size_t j = 0; j < a[i].size(); ++j) {
      const double abs_err = std::fabs(a[i][j] - b[i][j]);
      const double rel = abs_err / std::max(1.0, std::max(std::fabs(a[i][j]), std::fabs(b[i][j])));
      r.max_abs_err = std::max(r.max_abs_err, abs_err);
      r.max_rel_err = std::max(r.max_rel_err, rel);
    }
  }
  if (r.ok) r.ok = r.max_rel_err <= tol;
  return r;
}

GradCheck check_gradients(const ir::Prog& p, const std::vector<rt::Value>& args, double eps,
                          double tol, rt::InterpOptions opts) {
  auto num = numeric_gradients(p, args, eps, opts);
  auto rev = reverse_gradients(p, args, opts);
  return compare_gradients(num, rev, tol);
}

} // namespace npad::ad
