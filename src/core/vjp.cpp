// Reverse-mode AD by redundant execution (Sections 4 and 5).
//
// The tape is the lexical scope: whenever the return sweep enters a scope,
// the scope's forward sweep is re-emitted first, bringing every primal
// variable the adjoint code may need back into scope (rule vjp_body of
// Fig. 3). Sequential loops are the only construct that checkpoints:
// loop-variant variables are saved per iteration into scratch arrays (or
// once at entry under the §6.2 no-false-dependencies annotation). Parallel
// combinators are differentiated with the rewrite rules of Section 5:
//
//   map      — free arrays become accumulators (withacc/upd_acc), free
//              scalars become per-element partial sums reduced with (+),
//              bound inputs yield per-element adjoint arrays (§5.4);
//   reduce   — specialized rules for +, *, min/max, and the general
//              exclusive-scan-from-both-sides rule (§5.1);
//   scan     — + special case and the general linear-recurrence rule solved
//              by a scan with linear-function composition (§5.2);
//   hist     — reduce_by_index specials for +, *, min/max (§5.1.2);
//   scatter  — gather the overwritten adjoints, zero them out (§5.3).
//
// Deviation from the paper noted in DESIGN.md: the runtime is copy-on-write,
// so the explicit save/restore of overwritten elements (xs_saved in §5.3)
// is implicit — the primal array bound by the re-executed forward sweep is
// still live when the return sweep reads it.

#include <optional>
#include <unordered_map>

#include "core/ad.hpp"
#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/patterns.hpp"
#include "ir/visit.hpp"

namespace npad::ad {

namespace {

using namespace ir;

constexpr double kBig = 1e300;

class VjpCtx {
public:
  VjpCtx(Module& mod, TypeMap& tm) : mod_(mod), tm_(tm) {}

  using AdjMap = std::unordered_map<uint32_t, Var>;

  struct FwdInfo {
    std::vector<Var> chk;  // loop checkpoint arrays, one per loop param
  };

  static bool diff_t(const Type& t) { return t.elem == ScalarType::F64; }

  // ------------------------------------------------------ adjoint helpers --

  std::optional<Var> adjoint_opt(const AdjMap& adj, Var v) const {
    auto it = adj.find(v.id);
    if (it == adj.end()) return std::nullopt;
    return it->second;
  }

  Var adjoint_or_zero(Builder& b, AdjMap& adj, Var v) {
    if (auto a = adjoint_opt(adj, v)) return *a;
    Type t = tm_.at(v);
    assert(diff_t(t));
    Var z = t.rank == 0 ? b.rebind(cf64(0.0), mod_.name(v) + "_adj") : b.zeros_like(v);
    adj[v.id] = z;
    return z;
  }

  // Adds contribution `c` (same shape as v) to v's adjoint.
  void contribute(Builder& b, AdjMap& adj, Var v, Atom c) {
    if (!diff_t(tm_.at(v))) return;
    auto it = adj.find(v.id);
    if (it == adj.end()) {
      adj[v.id] = c.is_var() ? c.var() : b.rebind(c, mod_.name(v) + "_adj");
      return;
    }
    Var cur = it->second;
    if (tm_.at(cur).is_acc) {
      adj[v.id] = b.upd_acc(cur, {}, c);
    } else {
      adj[v.id] = vec_add(b, Atom(cur), c);
    }
  }

  // Adds contribution `c` to v's adjoint at index prefix `idx`.
  void contribute_at(Builder& b, AdjMap& adj, Var v, const std::vector<Atom>& idx, Atom c) {
    if (!diff_t(tm_.at(v))) return;
    Var cur = adjoint_or_zero(b, adj, v);
    if (tm_.at(cur).is_acc) {
      adj[v.id] = b.upd_acc(cur, idx, c);
      return;
    }
    Var old = b.index(cur, idx, "old");
    Var nv = vec_add(b, Atom(old), c);
    adj[v.id] = b.update(cur, idx, Atom(nv));
  }

  // Elementwise addition at any rank.
  Var vec_add(Builder& b, Atom x, Atom y) {
    Type t = tm_.at(x);
    if (t.rank == 0) return b.add(x, y);
    Var xv = x.var(), yv = y.is_var() ? y.var() : Var{};
    assert(yv.valid());
    Type et = elem_of(t);
    LambdaPtr l = b.lam({et, et}, [&](Builder& c, const std::vector<Var>& p) {
      return std::vector<Atom>{Atom(vec_add(c, Atom(p[0]), Atom(p[1])))};
    });
    return b.map1(std::move(l), {xv, yv}, "adds");
  }

  // Binds an existing variable id to an expression (used for re-installing
  // loop parameters / indices during re-execution).
  void bind_existing(Builder& b, Var v, Exp e) { b.push(stm1(v, tm_.at(v), std::move(e))); }

  Var as_var(Builder& b, const Atom& a) { return a.is_var() ? a.var() : b.rebind(a, "c"); }

  // ------------------------------------------------------------ the core --

  // Differentiates a scope: re-emits the forward sweep of `body`, seeds the
  // result adjoints, runs the return sweep in reverse statement order, and
  // returns the adjoints of `want`. res_adj must align with body.result
  // (entries for non-f64 results are ignored).
  std::vector<Atom> vjp_scope(Builder& b, const Body& body, const std::vector<Atom>& res_adj,
                              const std::vector<Var>& want, AdjMap adj) {
    std::vector<FwdInfo> info(body.stms.size());
    for (size_t i = 0; i < body.stms.size(); ++i) info[i] = fwd_stm(b, body.stms[i]);
    assert(res_adj.size() == body.result.size());
    for (size_t j = 0; j < body.result.size(); ++j) {
      const Atom& r = body.result[j];
      if (r.is_var() && diff_t(tm_.at(r.var()))) contribute(b, adj, r.var(), res_adj[j]);
    }
    for (size_t i = body.stms.size(); i-- > 0;) rev_stm(b, adj, body.stms[i], info[i]);
    std::vector<Atom> out;
    out.reserve(want.size());
    for (Var w : want) out.emplace_back(adjoint_or_zero(b, adj, w));
    return out;
  }

  // ----------------------------------------------------------- fwd sweep --

  FwdInfo fwd_stm(Builder& b, const Stm& st) {
    const auto* lp = std::get_if<OpLoop>(&st.e);
    if (lp == nullptr) {
      b.push(st);
      return {};
    }
    if (lp->while_cond) {
      // Tolerated only when no derivative flows through it (e.g. the
      // inspector loops emitted by opt::bound_whiles); rev_loop enforces
      // this when the return sweep reaches the statement.
      b.push(st);
      return {};
    }
    if (lp->checkpoint_entry) {
      // §6.2: no-false-dependency loops need no per-iteration checkpointing;
      // the COW runtime keeps the initial values alive, so the loop runs
      // unmodified and the return sweep re-executes against carried state.
      b.push(st);
      return {};
    }
    // Fig. 3: per-iteration checkpointing of all loop-variant variables.
    // Only loops of the current scope are checkpointed; nested loops are
    // re-executed (and then checkpointed) when the return sweep reaches them.
    FwdInfo info;
    OpLoop nl;
    nl.idx = lp->idx;
    nl.count = lp->count;
    nl.params = lp->params;
    nl.init = lp->init;
    Builder lb(mod_, tm_);
    std::vector<Atom> extra_res;
    std::vector<Param> extra_params;
    for (size_t j = 0; j < lp->params.size(); ++j) {
      Var iv = as_var(b, lp->init[j]);
      Var chk0 = b.scratch(lp->count, iv);
      Var cp = mod_.fresh("chkp");
      Type ct = lift(lp->params[j].type);
      tm_.bind(cp, ct);
      extra_params.push_back(Param{cp, ct});
      nl.init.emplace_back(chk0);
      Var cp2 = lb.update(cp, {Atom(lp->idx)}, Atom(lp->params[j].var));
      extra_res.emplace_back(cp2);
    }
    for (auto& p : extra_params) nl.params.push_back(p);
    for (const auto& s : lp->body->stms) lb.push(s);
    Body nb;
    nb.stms = lb.take_stms();
    nb.result = lp->body->result;
    for (auto& a : extra_res) nb.result.push_back(a);
    nl.body = make_body(std::move(nb));

    Stm ns;
    ns.vars = st.vars;
    ns.types = st.types;
    for (size_t j = 0; j < lp->params.size(); ++j) {
      Var cv = mod_.fresh("chk");
      Type ct = lift(lp->params[j].type);
      tm_.bind(cv, ct);
      ns.vars.push_back(cv);
      ns.types.push_back(ct);
      info.chk.push_back(cv);
    }
    ns.e = std::move(nl);
    b.push(std::move(ns));
    return info;
  }

  // -------------------------------------------------------- return sweep --

  void rev_stm(Builder& b, AdjMap& adj, const Stm& st, const FwdInfo& info) {
    std::visit(Overload{
                   [&](const OpAtom& o) {
                     if (auto y = out_adj(adj, st, 0); y && o.a.is_var()) {
                       contribute(b, adj, o.a.var(), Atom(*y));
                     }
                   },
                   [&](const OpBin& o) { rev_bin(b, adj, st, o); },
                   [&](const OpUn& o) { rev_un(b, adj, st, o); },
                   [&](const OpSelect& o) {
                     auto y = out_adj(adj, st, 0);
                     if (!y) return;
                     if (o.t.is_var()) {
                       contribute(b, adj, o.t.var(), Atom(b.select(o.c, Atom(*y), cf64(0.0))));
                     }
                     if (o.f.is_var()) {
                       contribute(b, adj, o.f.var(), Atom(b.select(o.c, cf64(0.0), Atom(*y))));
                     }
                   },
                   [&](const OpIndex& o) {
                     if (auto y = out_adj(adj, st, 0)) {
                       contribute_at(b, adj, o.arr, o.idx, Atom(*y));
                     }
                   },
                   [&](const OpUpdate& o) { rev_update(b, adj, st, o); },
                   [&](const OpUpdAcc&) {
                     throw ADError("vjp: user accumulators cannot be differentiated");
                   },
                   [&](const OpIota&) {},
                   [&](const OpLength&) {},
                   [&](const OpZerosLike&) {},
                   [&](const OpScratch&) {},
                   [&](const OpReplicate& o) { rev_replicate(b, adj, st, o); },
                   [&](const OpReverse& o) {
                     if (auto y = out_adj(adj, st, 0)) {
                       contribute(b, adj, o.arr, Atom(b.reverse(*y)));
                     }
                   },
                   [&](const OpTranspose& o) {
                     if (auto y = out_adj(adj, st, 0)) {
                       contribute(b, adj, o.arr, Atom(b.transpose(*y)));
                     }
                   },
                   [&](const OpCopy& o) {
                     if (auto y = out_adj(adj, st, 0)) contribute(b, adj, o.v, Atom(*y));
                   },
                   [&](const OpIf& o) { rev_if(b, adj, st, o); },
                   [&](const OpLoop& o) { rev_loop(b, adj, st, o, info); },
                   [&](const OpMap& o) { rev_map(b, adj, st, o); },
                   [&](const OpReduce& o) { rev_reduce(b, adj, st, o); },
                   [&](const OpScan& o) { rev_scan(b, adj, st, o); },
                   [&](const OpHist& o) { rev_hist(b, adj, st, o); },
                   [&](const OpScatter& o) { rev_scatter(b, adj, st, o); },
                   [&](const OpWithAcc&) {
                     throw ADError("vjp: withacc cannot be differentiated in reverse mode");
                   },
               },
               st.e);
  }

  // Adjoint of the i-th output if present and differentiable.
  std::optional<Var> out_adj(const AdjMap& adj, const Stm& st, size_t i) const {
    if (!diff_t(st.types[i])) return std::nullopt;
    return adjoint_opt(adj, st.vars[i]);
  }

  // ------------------------------------------------------------- scalars --

  void rev_bin(Builder& b, AdjMap& adj, const Stm& st, const OpBin& o) {
    auto yo = out_adj(adj, st, 0);
    if (!yo) return;
    Atom y{*yo};
    auto give = [&](const Atom& a, Atom c) {
      if (a.is_var()) contribute(b, adj, a.var(), c);
    };
    switch (o.op) {
      case BinOp::Add:
        give(o.a, y);
        give(o.b, y);
        break;
      case BinOp::Sub:
        give(o.a, y);
        give(o.b, Atom(b.neg(y)));
        break;
      case BinOp::Mul:
        give(o.a, Atom(b.mul(y, o.b)));
        give(o.b, Atom(b.mul(y, o.a)));
        break;
      case BinOp::Div:
        give(o.a, Atom(b.div(y, o.b)));
        // d(a/b)/db = -a/b^2 = -v/b
        give(o.b, Atom(b.neg(b.div(b.mul(y, Atom(st.vars[0])), o.b))));
        break;
      case BinOp::Pow:
        give(o.a, Atom(b.mul(y, b.mul(o.b, b.pow(o.a, b.sub(o.b, cf64(1.0)))))));
        if (o.b.is_var()) {
          give(o.b, Atom(b.mul(y, b.mul(Atom(st.vars[0]), b.log(o.a)))));
        }
        break;
      case BinOp::Min: {
        Var c = b.le(o.a, o.b);
        give(o.a, Atom(b.select(c, y, cf64(0.0))));
        give(o.b, Atom(b.select(c, cf64(0.0), y)));
        break;
      }
      case BinOp::Max: {
        Var c = b.ge(o.a, o.b);
        give(o.a, Atom(b.select(c, y, cf64(0.0))));
        give(o.b, Atom(b.select(c, cf64(0.0), y)));
        break;
      }
      default:
        break;  // comparisons / logic / mod: no adjoint
    }
  }

  void rev_un(Builder& b, AdjMap& adj, const Stm& st, const OpUn& o) {
    auto yo = out_adj(adj, st, 0);
    if (!yo || !o.a.is_var()) return;
    Atom y{*yo};
    Var a = o.a.var();
    if (!diff_t(tm_.at(a))) return;
    switch (o.op) {
      case UnOp::Neg: contribute(b, adj, a, Atom(b.neg(y))); break;
      case UnOp::Exp: contribute(b, adj, a, Atom(b.mul(y, Atom(st.vars[0])))); break;
      case UnOp::Log: contribute(b, adj, a, Atom(b.div(y, o.a))); break;
      case UnOp::Sqrt:
        contribute(b, adj, a, Atom(b.div(y, b.mul(cf64(2.0), Atom(st.vars[0])))));
        break;
      case UnOp::Sin: contribute(b, adj, a, Atom(b.mul(y, b.cos(o.a)))); break;
      case UnOp::Cos: contribute(b, adj, a, Atom(b.neg(b.mul(y, b.sin(o.a))))); break;
      case UnOp::Tanh: {
        Var v = st.vars[0];
        contribute(b, adj, a, Atom(b.mul(y, b.sub(cf64(1.0), b.mul(Atom(v), Atom(v))))));
        break;
      }
      case UnOp::Abs: contribute(b, adj, a, Atom(b.mul(y, b.un(UnOp::Sign, o.a)))); break;
      case UnOp::Sign: break;
      case UnOp::LGamma:
        contribute(b, adj, a, Atom(b.mul(y, b.un(UnOp::Digamma, o.a))));
        break;
      case UnOp::Digamma:
        throw ADError("vjp: derivative of digamma (trigamma) not implemented");
      case UnOp::ToF64: break;  // integral source: no adjoint
      default: break;
    }
  }

  void rev_update(Builder& b, AdjMap& adj, const Stm& st, const OpUpdate& o) {
    auto yo = out_adj(adj, st, 0);
    if (!yo) return;
    Var ybar = *yo;
    // Contribution of the written value, then zero out the written position
    // and hand the rest of the adjoint to the consumed array.
    Var velt = b.index(ybar, o.idx, "velt_adj");
    if (o.v.is_var()) contribute(b, adj, o.v.var(), Atom(velt));
    Atom z = o.v.is_var() && tm_.at(o.v).rank > 0 ? Atom(b.zeros_like(o.v.var())) : cf64(0.0);
    Var xsbar = b.update(ybar, o.idx, z);
    adj[o.arr.id] = xsbar;  // xs was consumed: its adjoint starts here
  }

  void rev_replicate(Builder& b, AdjMap& adj, const Stm& st, const OpReplicate& o) {
    auto yo = out_adj(adj, st, 0);
    if (!yo || !o.v.is_var()) return;
    Var v = o.v.var();
    if (!diff_t(tm_.at(v))) return;
    Type vt = tm_.at(v);
    if (vt.rank == 0) {
      Var s = b.reduce1(b.add_op(), cf64(0.0), {*yo}, "rsum");
      contribute(b, adj, v, Atom(s));
    } else {
      Var ne = b.zeros_like(v);
      LambdaPtr op = b.lam({vt, vt}, [&](Builder& c, const std::vector<Var>& p) {
        return std::vector<Atom>{Atom(vec_add(c, Atom(p[0]), Atom(p[1])))};
      });
      Var s = b.reduce1(std::move(op), Atom(ne), {*yo}, "rsum");
      contribute(b, adj, v, Atom(s));
    }
  }

  // ------------------------------------------------------------------ if --

  void rev_if(Builder& b, AdjMap& adj, const Stm& st, const OpIf& o) {
    // Adjoint seeds of the outputs; skip the whole branch rev when no
    // derivative flows in.
    bool any = false;
    std::vector<Atom> seeds(st.vars.size(), cf64(0.0));
    for (size_t i = 0; i < st.vars.size(); ++i) {
      if (auto y = out_adj(adj, st, i)) {
        seeds[i] = Atom(*y);
        any = true;
      }
    }
    if (!any) return;
    for (size_t i = 0; i < st.vars.size(); ++i) {
      if (diff_t(st.types[i]) && seeds[i].is_const()) {
        seeds[i] = st.types[i].rank == 0 ? cf64(0.0) : Atom(b.zeros_like(st.vars[i]));
      }
    }
    // Union of differentiable free variables of both branches.
    std::vector<Var> fvs;
    {
      std::unordered_map<uint32_t, bool> seen;
      for (const Body* body : {o.tb.get(), o.fb.get()}) {
        for (Var v : free_vars(*body)) {
          if (diff_t(tm_.at(v)) && !seen.count(v.id)) {
            seen[v.id] = true;
            fvs.push_back(v);
          }
        }
      }
    }
    std::vector<Var> cur;
    for (Var fv : fvs) cur.push_back(adjoint_or_zero(b, adj, fv));

    auto rev_branch = [&](const Body& body) -> BodyPtr {
      Builder cb(mod_, tm_);
      AdjMap child;
      for (size_t i = 0; i < fvs.size(); ++i) child[fvs[i].id] = cur[i];
      std::vector<Atom> outs = vjp_scope(cb, body, seeds, fvs, std::move(child));
      return make_body(Body{cb.take_stms(), std::move(outs)});
    };
    BodyPtr tb = rev_branch(*o.tb);
    BodyPtr fb = rev_branch(*o.fb);
    Stm ns;
    for (size_t i = 0; i < fvs.size(); ++i) {
      Var nv = mod_.fresh(mod_.name(fvs[i]) + "_adj");
      Type t = tm_.at(cur[i]);
      tm_.bind(nv, t);
      ns.vars.push_back(nv);
      ns.types.push_back(t);
    }
    ns.e = OpIf{o.c, std::move(tb), std::move(fb)};
    std::vector<Var> nvars = ns.vars;
    b.push(std::move(ns));
    for (size_t i = 0; i < fvs.size(); ++i) adj[fvs[i].id] = nvars[i];
  }

  // ---------------------------------------------------------------- loop --

  void rev_loop(Builder& b, AdjMap& adj, const Stm& st, const OpLoop& o, const FwdInfo& info) {
    const size_t np = o.params.size();
    // Seeds: adjoints of the loop outputs.
    std::vector<Var> ybar(np);
    bool any = false;
    for (size_t j = 0; j < np; ++j) {
      if (!diff_t(o.params[j].type)) continue;
      if (auto y = out_adj(adj, st, j)) {
        ybar[j] = *y;
        any = true;
      }
    }
    if (!any) return;
    if (o.while_cond) {
      throw ADError("vjp: while loops must be bounded first (opt::prepare_for_ad)");
    }
    for (size_t j = 0; j < np; ++j) {
      if (!diff_t(o.params[j].type) || ybar[j].valid()) continue;
      ybar[j] = o.params[j].type.rank == 0 ? b.rebind(cf64(0.0), "yz")
                                           : b.zeros_like(st.vars[j]);
    }
    // Differentiable free variables of the loop body.
    std::vector<Var> bound;
    for (const auto& p : o.params) bound.push_back(p.var);
    if (o.idx.valid()) bound.push_back(o.idx);
    std::vector<Var> fvs;
    for (Var v : free_vars(*o.body, bound)) {
      if (diff_t(tm_.at(v))) fvs.push_back(v);
    }
    std::vector<Var> fv_cur;
    for (Var fv : fvs) fv_cur.push_back(adjoint_or_zero(b, adj, fv));

    // Reversed loop: carries (primal params, param adjoints, free adjoints).
    OpLoop rl;
    rl.idx = mod_.fresh("ir");
    tm_.bind(rl.idx, i64());
    rl.count = o.count;
    std::vector<Var> xp(np);
    for (size_t j = 0; j < np; ++j) {
      xp[j] = mod_.fresh("xp");
      tm_.bind(xp[j], o.params[j].type);
      rl.params.push_back(Param{xp[j], o.params[j].type});
      rl.init.emplace_back(st.vars[j]);  // final value (entry-mode re-exec)
    }
    std::vector<Var> xb(np);
    for (size_t j = 0; j < np; ++j) {
      if (!diff_t(o.params[j].type)) continue;
      xb[j] = mod_.fresh("xb");
      tm_.bind(xb[j], o.params[j].type);
      rl.params.push_back(Param{xb[j], o.params[j].type});
      rl.init.emplace_back(ybar[j]);
    }
    std::vector<Var> fb(fvs.size());
    for (size_t i = 0; i < fvs.size(); ++i) {
      fb[i] = mod_.fresh("fb");
      Type t = tm_.at(fv_cur[i]);
      tm_.bind(fb[i], t);
      rl.params.push_back(Param{fb[i], t});
      rl.init.emplace_back(fv_cur[i]);
    }

    Builder lb(mod_, tm_);
    Var ri = lb.sub(b_sub1(lb, o.count), Atom(rl.idx));
    bind_existing(lb, o.idx, OpAtom{Atom(ri)});
    for (size_t j = 0; j < np; ++j) {
      if (!o.checkpoint_entry) {
        bind_existing(lb, o.params[j].var, OpIndex{info.chk[j], {Atom(ri)}});
      } else {
        bind_existing(lb, o.params[j].var, OpAtom{Atom(xp[j])});
      }
    }
    // Seeds for the body results (aligned with body.result = next params).
    std::vector<Atom> seeds;
    for (size_t j = 0; j < np; ++j) {
      seeds.emplace_back(diff_t(o.params[j].type) ? Atom(xb[j]) : cf64(0.0));
    }
    AdjMap child;
    for (size_t i = 0; i < fvs.size(); ++i) child[fvs[i].id] = fb[i];
    std::vector<Var> want;
    for (size_t j = 0; j < np; ++j) {
      if (diff_t(o.params[j].type)) want.push_back(o.params[j].var);
    }
    for (Var fv : fvs) want.push_back(fv);
    std::vector<Atom> outs = vjp_scope(lb, *o.body, seeds, want, std::move(child));
    Body rb;
    rb.stms = lb.take_stms();
    for (size_t j = 0; j < np; ++j) rb.result.emplace_back(xp[j]);
    for (const auto& a : outs) rb.result.push_back(a);
    rl.body = make_body(std::move(rb));

    Stm ns;
    for (const auto& p : rl.params) {
      Var nv = mod_.fresh("rlo");
      tm_.bind(nv, p.type);
      ns.vars.push_back(nv);
      ns.types.push_back(p.type);
    }
    std::vector<Var> rvars = ns.vars;
    ns.e = std::move(rl);
    b.push(std::move(ns));
    size_t pos = np;  // skip primal carries
    for (size_t j = 0; j < np; ++j) {
      if (!diff_t(o.params[j].type)) continue;
      if (o.init[j].is_var()) contribute(b, adj, o.init[j].var(), Atom(rvars[pos]));
      ++pos;
    }
    for (size_t i = 0; i < fvs.size(); ++i) adj[fvs[i].id] = rvars[pos + i];
  }

  // ----------------------------------------------------------------- map --

  void rev_map(Builder& b, AdjMap& adj, const Stm& st, const OpMap& o) {
    if (o.flat != FlatForm::None) throw ADError("vjp: differentiate before flattening");
    const Lambda& f = *o.f;
    for (const auto& p : f.params) {
      if (p.type.is_acc) throw ADError("vjp: map over accumulators cannot be re-differentiated");
    }
    // Output adjoints (zeros for unused differentiable outputs).
    bool any = false;
    std::vector<Var> ybar;
    std::vector<size_t> diff_out;
    for (size_t i = 0; i < st.vars.size(); ++i) {
      if (!diff_t(st.types[i])) continue;
      diff_out.push_back(i);
      if (auto y = out_adj(adj, st, i)) {
        ybar.push_back(*y);
        any = true;
      } else {
        ybar.push_back(Var{});
      }
    }
    if (!any) return;
    for (size_t k = 0; k < diff_out.size(); ++k) {
      if (!ybar[k].valid()) ybar[k] = b.zeros_like(st.vars[diff_out[k]]);
    }

    // Free variables: arrays get accumulator adjoints, scalars get partial
    // sums. Free arrays whose adjoint is already an accumulator (nested
    // reverse maps) are passed through as free accumulator variables.
    std::vector<Var> farr_new, farr_acc, fsca;
    for (Var v : free_vars(f)) {
      Type t = tm_.at(v);
      if (!diff_t(t)) continue;
      if (t.rank == 0) {
        fsca.push_back(v);
      } else if (auto a = adjoint_opt(adj, v); a && tm_.at(*a).is_acc) {
        farr_acc.push_back(v);
      } else {
        farr_new.push_back(v);
      }
    }

    // The reverse lambda. Element params reuse the original ids so the
    // re-emitted forward sweep of the lambda body resolves them. The free
    // arrays' accumulators are included in `want` so vjp_scope returns their
    // final threaded vars first (the withacc contract).
    Lambda rf;
    rf.params = f.params;
    std::vector<Var> ybe(diff_out.size());
    for (size_t k = 0; k < diff_out.size(); ++k) {
      Type et = elem_of(st.types[diff_out[k]]);
      ybe[k] = mod_.fresh("ye_adj");
      tm_.bind(ybe[k], et);
      rf.params.push_back(Param{ybe[k], et});
    }
    std::vector<Var> acc_params(farr_new.size());
    for (size_t i = 0; i < farr_new.size(); ++i) {
      Type at = acc_of(tm_.at(farr_new[i]));
      acc_params[i] = mod_.fresh("acc");
      tm_.bind(acc_params[i], at);
      rf.params.push_back(Param{acc_params[i], at});
    }
    {
      Builder cb(mod_, tm_);
      AdjMap child;
      for (size_t i = 0; i < farr_new.size(); ++i) child[farr_new[i].id] = acc_params[i];
      for (Var v : farr_acc) child[v.id] = *adjoint_opt(adj, v);
      std::vector<Atom> seeds(f.body.result.size(), cf64(0.0));
      size_t k = 0;
      for (size_t i = 0; i < f.body.result.size(); ++i) {
        if (diff_t(f.rets[i])) seeds[i] = Atom(ybe[k++]);
      }
      std::vector<Var> want;
      for (Var v : farr_new) want.push_back(v);  // final acc vars come back first
      for (const auto& p : f.params) {
        if (diff_t(p.type)) want.push_back(p.var);
      }
      for (Var v : fsca) want.push_back(v);
      std::vector<Atom> outs = vjp_scope(cb, f.body, seeds, want, std::move(child));
      rf.body = Body{cb.take_stms(), std::move(outs)};
      for (const auto& a : rf.body.result) rf.rets.push_back(tm_.at(a));
    }
    LambdaPtr revlam = make_lambda(std::move(rf));

    // Assemble: map args = xs ++ ybar arrays ++ accs.
    const size_t n_param_adj = [&] {
      size_t c = 0;
      for (const auto& p : f.params) c += diff_t(p.type) ? 1 : 0;
      return c;
    }();

    std::vector<Var> results;
    if (!farr_new.empty()) {
      std::vector<Var> a0;
      for (Var v : farr_new) a0.push_back(adjoint_or_zero(b, adj, v));
      results = b.withacc(a0, [&](Builder& wb, const std::vector<Var>& accs) {
        std::vector<Var> margs = o.args;
        for (Var y : ybar) margs.push_back(y);
        for (Var a : accs) margs.push_back(a);
        std::vector<Var> mres = wb.map(revlam, margs, "radj");
        std::vector<Atom> res;
        for (Var v : mres) res.emplace_back(v);
        return res;
      });
    } else {
      std::vector<Var> margs = o.args;
      for (Var y : ybar) margs.push_back(y);
      results = b.map(revlam, margs, "radj");
    }

    // Unpack: [acc arrays (farr_new)] ++ [param adjoint arrays] ++ [parts].
    size_t pos = 0;
    for (Var v : farr_new) adj[v.id] = results[pos++];
    for (size_t i = 0; i < f.params.size(); ++i) {
      if (!diff_t(f.params[i].type)) continue;
      contribute(b, adj, o.args[i], Atom(results[pos++]));
    }
    (void)n_param_adj;
    for (Var v : fsca) {
      Var s = b.reduce1(b.add_op(), cf64(0.0), {results[pos++]}, "psum");
      contribute(b, adj, v, Atom(s));
    }
  }

  // -------------------------------------------------------------- reduce --

  void rev_reduce(Builder& b, AdjMap& adj, const Stm& st, const OpReduce& o) {
    if (o.pre) throw ADError("vjp: redomap must be fused after differentiation, not before");
    auto yo = out_adj(adj, st, 0);
    if (o.args.size() != 1) {
      if (!yo && !out_adj_any(adj, st)) return;
      throw ADError("vjp: multi-array reduce differentiation unsupported");
    }
    if (!yo) return;
    Var ybar = *yo;
    Var xs = o.args[0];
    const Type et = elem_of(tm_.at(xs));
    auto bop = recognize_binop(*o.op);
    auto vop = recognize_vectorized_binop(*o.op);
    Var n = b.length(xs);
    if ((bop && *bop == BinOp::Add) || (vop && *vop == BinOp::Add)) {
      contribute(b, adj, xs, Atom(b.replicate(Atom(n), Atom(ybar))));
      return;
    }
    if (bop && *bop == BinOp::Mul && et.rank == 0) {
      rev_reduce_mul(b, adj, st, xs, ybar);
      return;
    }
    if (bop && (*bop == BinOp::Min || *bop == BinOp::Max) && et.rank == 0) {
      rev_reduce_minmax(b, adj, xs, ybar, *bop == BinOp::Min);
      return;
    }
    if (et.rank == 0) {
      rev_reduce_general(b, adj, o, xs, ybar);
      return;
    }
    throw ADError("vjp: reduce with non-scalar elements and non-(+) operator unsupported");
  }

  bool out_adj_any(const AdjMap& adj, const Stm& st) const {
    for (size_t i = 0; i < st.vars.size(); ++i) {
      if (diff_t(st.types[i]) && adjoint_opt(adj, st.vars[i])) return true;
    }
    return false;
  }

  // §5.1.1 multiplication: track the product of nonzeros and the zero count.
  void rev_reduce_mul(Builder& b, AdjMap& adj, const Stm& st, Var xs, Var ybar) {
    Var y = st.vars[0];
    Var masked = b.map1(b.lam({f64()},
                              [](Builder& c, const std::vector<Var>& p) {
                                Var z = c.eq(p[0], cf64(0.0));
                                return std::vector<Atom>{Atom(c.select(z, cf64(1.0), p[0]))};
                              }),
                        {xs}, "nz");
    Var prod_nz = b.reduce1(b.mul_op(), cf64(1.0), {masked}, "prod_nz");
    Var zmask = b.map1(b.lam({f64()},
                             [](Builder& c, const std::vector<Var>& p) {
                               Var z = c.eq(p[0], cf64(0.0));
                               return std::vector<Atom>{Atom(c.select(z, cf64(1.0), cf64(0.0)))};
                             }),
                       {xs}, "zm");
    Var zcnt = b.reduce1(b.add_op(), cf64(0.0), {zmask}, "zcnt");
    Var contrib =
        b.map1(b.lam({f64()},
                     [&](Builder& c, const std::vector<Var>& p) {
                       Var no_zero = c.eq(zcnt, cf64(0.0));
                       Var one_zero = c.eq(zcnt, cf64(1.0));
                       Var xz = c.eq(p[0], cf64(0.0));
                       Var safe_x = c.select(xz, cf64(1.0), p[0]);
                       Var t_all = c.mul(ybar, c.div(y, safe_x));
                       Var t_one = c.select(c.logical_and(one_zero, xz),
                                            c.mul(ybar, prod_nz), cf64(0.0));
                       return std::vector<Atom>{Atom(c.select(no_zero, t_all, t_one))};
                     }),
               {xs}, "mul_adj");
    contribute(b, adj, xs, Atom(contrib));
  }

  // §5.1.1 min/max: only the (first) extremal element receives the adjoint.
  void rev_reduce_minmax(Builder& b, AdjMap& adj, Var xs, Var ybar, bool is_min) {
    Var n = b.length(xs);
    Var is = b.iota(Atom(n));
    LambdaPtr op = b.lam(
        {f64(), i64(), f64(), i64()}, [&](Builder& c, const std::vector<Var>& p) {
          Var take_a = is_min ? c.le(p[0], p[2]) : c.ge(p[0], p[2]);
          // Prefer the earlier index on ties (and skip the neutral's -1).
          Var a_neutral = c.eq(p[1], ci64(-1));
          Var pick_b = c.logical_or(a_neutral, c.logical_not(take_a));
          Var v = c.select(pick_b, p[2], p[0]);
          Var i = c.select(pick_b, p[3], p[1]);
          return std::vector<Atom>{Atom(v), Atom(i)};
        });
    auto mi = b.reduce(op, {cf64(is_min ? kBig : -kBig), ci64(-1)}, {xs, is}, "argm");
    contribute_at(b, adj, xs, {Atom(mi[1])}, Atom(ybar));
  }

  // §5.1 general rule: exclusive prefixes from the left and right, then a
  // map applying the vjp of (l, x, r) -> l ⊙ x ⊙ r with respect to x.
  void rev_reduce_general(Builder& b, AdjMap& adj, const OpReduce& o, Var xs, Var ybar) {
    const Atom ne = o.neutral[0];
    Var n = b.length(xs);
    Var inc = b.scan1(o.op, ne, {xs}, "linc");
    // Flipped operator for the right-to-left scan.
    LambdaPtr flip = b.lam({f64(), f64()}, [&](Builder& c, const std::vector<Var>& p) {
      auto [stms, res] = inline_lambda(mod_, *o.op, {Atom(p[1]), Atom(p[0])});
      c.splice(std::move(stms));
      return res;
    });
    Var rxs = b.reverse(xs);
    Var rinc = b.scan1(std::move(flip), ne, {rxs}, "rinc");
    Var iot = b.iota(Atom(n));
    auto exclusive = [&](Var incl) {
      return b.map1(b.lam({i64()},
                          [&](Builder& c, const std::vector<Var>& p) {
                            Var im1 = c.max(c.sub(p[0], ci64(1)), ci64(0));
                            Var prev = c.index(incl, {Atom(im1)});
                            Var first = c.eq(p[0], ci64(0));
                            return std::vector<Atom>{Atom(c.select(first, ne, Atom(prev)))};
                          }),
                    {iot}, "excl");
    };
    Var ls = exclusive(inc);
    Var rs_rev = exclusive(rinc);
    Var rs = b.reverse(rs_rev);
    // Per-element adjoint: vjp of l ⊙ x ⊙ r with respect to x, seeded ybar.
    Var contrib = b.map1(
        b.lam({f64(), f64(), f64()},
              [&](Builder& c, const std::vector<Var>& p) {
                Builder ib(mod_, tm_);
                auto [s1, r1] = inline_lambda(mod_, *o.op, {Atom(p[0]), Atom(p[1])});
                Body tiny;
                tiny.stms = std::move(s1);
                auto [s2, r2] = inline_lambda(mod_, *o.op, {r1[0], Atom(p[2])});
                for (auto& s : s2) tiny.stms.push_back(std::move(s));
                tiny.result = {r2[0]};
                std::vector<Atom> outs =
                    vjp_scope(c, tiny, {Atom(ybar)}, {p[1]}, AdjMap{});
                (void)ib;
                return outs;
              }),
        {ls, xs, rs}, "red_adj");
    contribute(b, adj, xs, Atom(contrib));
  }

  // ---------------------------------------------------------------- scan --

  void rev_scan(Builder& b, AdjMap& adj, const Stm& st, const OpScan& o) {
    if (o.pre) throw ADError("vjp: redomap must be fused after differentiation, not before");
    auto yo = out_adj(adj, st, 0);
    if (o.args.size() != 1) {
      if (!out_adj_any(adj, st)) return;
      throw ADError("vjp: multi-array scan differentiation unsupported");
    }
    if (!yo) return;
    Var ybar = *yo;
    Var xs = o.args[0];
    Var rs = st.vars[0];
    const Type et = elem_of(tm_.at(xs));
    if (et.rank != 0) throw ADError("vjp: scan with non-scalar elements unsupported");
    auto bop = recognize_binop(*o.op);
    if (bop && *bop == BinOp::Add) {
      Var r1 = b.reverse(ybar);
      Var sc = b.scan1(b.add_op(), cf64(0.0), {r1}, "sufsum");
      Var contrib = b.reverse(sc);
      contribute(b, adj, xs, Atom(contrib));
      return;
    }
    // General rule (§5.2): the adjoint of the scan result is a backward
    // linear recurrence r̄_i = ȳ_i + c_i r̄_{i+1}, solved by a scan with
    // linear-function composition over the reversed sequences.
    const Atom ne = o.neutral[0];
    Var n = b.length(xs);
    Var iot = b.iota(Atom(n));
    Var nm1 = b.sub(Atom(n), ci64(1));
    // c_i = d(rs_i ⊙ x_{i+1}) / d rs_i   (0 at i = n-1)
    Var cvals = b.map1(
        b.lam({i64()},
              [&](Builder& c, const std::vector<Var>& p) {
                Var ip1 = c.min(c.add(p[0], ci64(1)), Atom(nm1));
                Var l = c.index(rs, {Atom(p[0])});
                Var x = c.index(xs, {Atom(ip1)});
                auto [stms, res] = inline_lambda(mod_, *o.op, {Atom(l), Atom(x)});
                Body tiny{std::move(stms), {res[0]}};
                std::vector<Atom> dl = vjp_scope(c, tiny, {cf64(1.0)}, {l}, AdjMap{});
                Var last = c.eq(p[0], Atom(nm1));
                return std::vector<Atom>{Atom(c.select(last, cf64(0.0), dl[0]))};
              }),
        {iot}, "cvals");
    Var dr = b.reverse(ybar);
    Var cr = b.reverse(cvals);
    LambdaPtr lin = b.lam({f64(), f64(), f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            // (d1,c1) o (d2,c2) = (d2 + c2*d1, c2*c1)
                            Var d = c.add(p[2], c.mul(p[3], p[0]));
                            Var cc = c.mul(p[3], p[1]);
                            return std::vector<Atom>{Atom(d), Atom(cc)};
                          });
    auto vs = b.scan(std::move(lin), {cf64(0.0), cf64(1.0)}, {dr, cr}, "lrec");
    Var rsbar = b.reverse(vs[0]);
    // ā_i = d(l_i ⊙ x_i)/d x_i · r̄s_i with l_i = rs_{i-1} (ne at i = 0).
    Var contrib = b.map1(
        b.lam({i64()},
              [&](Builder& c, const std::vector<Var>& p) {
                Var im1 = c.max(c.sub(p[0], ci64(1)), ci64(0));
                Var prev = c.index(rs, {Atom(im1)});
                Var first = c.eq(p[0], ci64(0));
                Var l = c.select(first, ne, Atom(prev));
                Var x = c.index(xs, {Atom(p[0])});
                Var seed = c.index(rsbar, {Atom(p[0])});
                auto [stms, res] = inline_lambda(mod_, *o.op, {Atom(l), Atom(x)});
                Body tiny{std::move(stms), {res[0]}};
                std::vector<Atom> dx = vjp_scope(c, tiny, {Atom(seed)}, {x}, AdjMap{});
                return dx;
              }),
        {iot}, "scan_adj");
    contribute(b, adj, xs, Atom(contrib));
  }

  // ---------------------------------------------------------------- hist --

  void rev_hist(Builder& b, AdjMap& adj, const Stm& st, const OpHist& o) {
    if (o.pre) throw ADError("vjp: histomap must be fused after differentiation, not before");
    auto yo = out_adj(adj, st, 0);
    if (!yo) return;
    Var hbar = *yo;
    auto bop = recognize_binop(*o.op);
    auto vop = recognize_vectorized_binop(*o.op);
    const Type et = elem_of(tm_.at(o.dest));
    Var m = b.length(o.dest);
    if ((bop && *bop == BinOp::Add) || (vop && *vop == BinOp::Add)) {
      // dest passes its adjoint through; values gather theirs from the bins.
      contribute(b, adj, o.dest, Atom(hbar));
      Var contrib = guarded_gather(b, hbar, o.inds, m, et);
      contribute(b, adj, o.vals, Atom(contrib));
      return;
    }
    if (bop && *bop == BinOp::Mul && et.rank == 0) {
      rev_hist_mul(b, adj, st, o, hbar, m);
      return;
    }
    if (bop && (*bop == BinOp::Min || *bop == BinOp::Max) && et.rank == 0) {
      rev_hist_minmax(b, adj, st, o, hbar, m);
      return;
    }
    throw ADError("vjp: reduce_by_index with general operators unsupported (paper WIP)");
  }

  // Gather src[inds[i]] with zero for out-of-range bins.
  Var guarded_gather(Builder& b, Var src, Var inds, Var m, Type et) {
    return b.map1(
        b.lam({i64()},
              [&](Builder& c, const std::vector<Var>& p) {
                Var valid = c.logical_and(c.ge(p[0], ci64(0)), c.lt(p[0], Atom(m)));
                Var cl = c.max(c.min(p[0], c.sub(Atom(m), ci64(1))), ci64(0));
                if (et.rank == 0) {
                  Var v = c.index(src, {Atom(cl)});
                  return std::vector<Atom>{Atom(c.select(valid, Atom(v), cf64(0.0)))};
                }
                Var row = c.index(src, {Atom(cl)});
                Var mask = c.select(valid, cf64(1.0), cf64(0.0));
                Var scaled = scale_by(c, row, mask);
                return std::vector<Atom>{Atom(scaled)};
              }),
        {inds}, "hgath");
  }

  Var scale_by(Builder& b, Var arr, Var s) {
    Type t = tm_.at(arr);
    if (t.rank == 0) return b.mul(Atom(arr), Atom(s));
    LambdaPtr l = b.lam({elem_of(t)}, [&](Builder& c, const std::vector<Var>& p) {
      return std::vector<Atom>{Atom(scale_by(c, p[0], s))};
    });
    return b.map1(std::move(l), {arr}, "scl");
  }

  void rev_hist_mul(Builder& b, AdjMap& adj, const Stm& st, const OpHist& o, Var hbar, Var m) {
    Var y = st.vars[0];
    // Per-bin zero count (values + dest) and product of nonzeros.
    Var zmask = b.map1(b.lam({f64()},
                             [](Builder& c, const std::vector<Var>& p) {
                               Var z = c.eq(p[0], cf64(0.0));
                               return std::vector<Atom>{Atom(c.select(z, cf64(1.0), cf64(0.0)))};
                             }),
                       {o.vals}, "zm");
    Var zdest = b.zeros_like(o.dest);
    Var zc_vals = b.hist(b.add_op(), cf64(0.0), zdest, o.inds, zmask);
    Var zcnt = b.map(b.lam({f64(), f64()},
                           [](Builder& c, const std::vector<Var>& p) {
                             Var dz = c.eq(p[1], cf64(0.0));
                             Var add = c.select(dz, cf64(1.0), cf64(0.0));
                             return std::vector<Atom>{Atom(c.add(p[0], Atom(add)))};
                           }),
                     {zc_vals, o.dest}, "zcnt")[0];
    Var masked_vals = b.map1(b.lam({f64()},
                                   [](Builder& c, const std::vector<Var>& p) {
                                     Var z = c.eq(p[0], cf64(0.0));
                                     return std::vector<Atom>{
                                         Atom(c.select(z, cf64(1.0), p[0]))};
                                   }),
                             {o.vals}, "mv");
    Var ones = b.map1(b.lam({f64()},
                            [](Builder& c, const std::vector<Var>& p) {
                              (void)p;
                              return std::vector<Atom>{cf64(1.0)};
                            }),
                      {o.dest}, "ones");
    Var nz_hist = b.hist(b.mul_op(), cf64(1.0), ones, o.inds, masked_vals);
    Var nzp = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            Var dz = c.eq(p[1], cf64(0.0));
                            Var d = c.select(dz, cf64(1.0), p[1]);
                            return std::vector<Atom>{Atom(c.mul(p[0], Atom(d)))};
                          }),
                    {nz_hist, o.dest}, "nzp")[0];
    auto bin_contrib = [&](Builder& c, Var val, Var bin) -> Var {
      Var hb = c.index(hbar, {Atom(bin)});
      Var zcb = c.index(zcnt, {Atom(bin)});
      Var nzb = c.index(nzp, {Atom(bin)});
      Var yb = c.index(y, {Atom(bin)});
      Var xz = c.eq(val, cf64(0.0));
      Var safe = c.select(xz, cf64(1.0), val);
      Var t_all = c.mul(Atom(hb), c.div(Atom(yb), Atom(safe)));
      Var one = c.logical_and(c.eq(zcb, cf64(1.0)), xz);
      Var t_one = c.select(one, c.mul(Atom(hb), Atom(nzb)), cf64(0.0));
      return c.select(c.eq(zcb, cf64(0.0)), Atom(t_all), Atom(t_one));
    };
    Var adj_vals = b.map1(b.lam({f64(), i64()},
                                [&](Builder& c, const std::vector<Var>& p) {
                                  Var valid = c.logical_and(c.ge(p[1], ci64(0)),
                                                            c.lt(p[1], Atom(m)));
                                  Var cl = c.max(c.min(p[1], c.sub(Atom(m), ci64(1))), ci64(0));
                                  Var r = bin_contrib(c, p[0], cl);
                                  return std::vector<Atom>{
                                      Atom(c.select(valid, Atom(r), cf64(0.0)))};
                                }),
                          {o.vals, o.inds}, "hmul_adj");
    contribute(b, adj, o.vals, Atom(adj_vals));
    Var iot = b.iota(Atom(m));
    Var adj_dest = b.map1(b.lam({f64(), i64()},
                                [&](Builder& c, const std::vector<Var>& p) {
                                  Var r = bin_contrib(c, p[0], p[1]);
                                  return std::vector<Atom>{Atom(r)};
                                }),
                          {o.dest, iot}, "hmul_dadj");
    contribute(b, adj, o.dest, Atom(adj_dest));
  }

  void rev_hist_minmax(Builder& b, AdjMap& adj, const Stm& st, const OpHist& o, Var hbar,
                       Var m) {
    Var y = st.vars[0];
    Var n = b.length(o.inds);
    Var iot = b.iota(Atom(n));
    // Candidate winners: the position of a value equal to the bin's result.
    Var cand = b.map1(
        b.lam({i64()},
              [&](Builder& c, const std::vector<Var>& p) {
                Var ind = c.index(o.inds, {Atom(p[0])});
                Var valid = c.logical_and(c.ge(ind, ci64(0)), c.lt(Atom(ind), Atom(m)));
                Var cl = c.max(c.min(Atom(ind), c.sub(Atom(m), ci64(1))), ci64(0));
                Var v = c.index(o.vals, {Atom(p[0])});
                Var yb = c.index(y, {Atom(cl)});
                Var hit = c.logical_and(valid, c.eq(Atom(v), Atom(yb)));
                return std::vector<Atom>{
                    Atom(c.select(hit, c.to_f64(p[0]), cf64(kBig)))};
              }),
        {iot}, "cand");
    Var bigs = b.map1(b.lam({f64()},
                            [](Builder& c, const std::vector<Var>& p) {
                              (void)p;
                              return std::vector<Atom>{cf64(kBig)};
                            }),
                      {o.dest}, "bigs");
    Var winner = b.hist(b.min_op(), cf64(kBig), bigs, o.inds, cand);
    Var adj_vals = b.map1(
        b.lam({i64()},
              [&](Builder& c, const std::vector<Var>& p) {
                Var ind = c.index(o.inds, {Atom(p[0])});
                Var valid = c.logical_and(c.ge(ind, ci64(0)), c.lt(Atom(ind), Atom(m)));
                Var cl = c.max(c.min(Atom(ind), c.sub(Atom(m), ci64(1))), ci64(0));
                Var w = c.index(winner, {Atom(cl)});
                Var me = c.eq(Atom(w), c.to_f64(p[0]));
                Var hb = c.index(hbar, {Atom(cl)});
                Var r = c.select(c.logical_and(valid, me), Atom(hb), cf64(0.0));
                return std::vector<Atom>{Atom(r)};
              }),
        {iot}, "hmm_adj");
    contribute(b, adj, o.vals, Atom(adj_vals));
    // The destination keeps the adjoint in bins where no value won.
    Var adj_dest = b.map(b.lam({f64(), f64()},
                               [&](Builder& c, const std::vector<Var>& p) {
                                 Var none = c.eq(p[1], cf64(kBig));
                                 Var r = c.select(none, p[0], cf64(0.0));
                                 return std::vector<Atom>{Atom(r)};
                               }),
                         {hbar, winner}, "hmm_dadj")[0];
    contribute(b, adj, o.dest, Atom(adj_dest));
  }

  // ------------------------------------------------------------- scatter --

  void rev_scatter(Builder& b, AdjMap& adj, const Stm& st, const OpScatter& o) {
    auto yo = out_adj(adj, st, 0);
    if (!yo) return;
    Var ybar = *yo;
    Var m = b.length(o.dest);
    const Type et = elem_of(tm_.at(o.dest));
    Var gath = guarded_gather(b, ybar, o.inds, m, et);
    contribute(b, adj, o.vals, Atom(gath));
    Var zv = b.zeros_like(o.vals);
    Var xsbar = b.scatter(ybar, o.inds, zv);
    adj[o.dest.id] = xsbar;  // dest was consumed: its adjoint starts here
  }

  // --------------------------------------------------------------- misc ---

  Var b_sub1(Builder& b, const Atom& n) { return b.sub(n, ci64(1)); }

  Module& mod_;
  TypeMap& tm_;
};

} // namespace

Prog vjp(const Prog& p) {
  auto mod = p.mod;
  TypeMap tm = collect_types(p.fn);
  VjpCtx ctx(*mod, tm);
  Builder b(*mod, tm);

  Function f;
  f.name = p.fn.name + "_vjp";
  f.params = p.fn.params;
  // One adjoint seed per differentiable result.
  std::vector<Atom> res_adj(p.fn.body.result.size(), cf64(0.0));
  for (size_t i = 0; i < p.fn.body.result.size(); ++i) {
    if (!differentiable(p.fn.rets[i])) continue;
    Var s = mod->fresh("seed");
    tm.bind(s, p.fn.rets[i]);
    f.params.push_back(Param{s, p.fn.rets[i]});
    res_adj[i] = Atom(s);
  }
  std::vector<Var> want;
  for (const auto& pr : p.fn.params) {
    if (differentiable(pr.type)) want.push_back(pr.var);
  }
  std::vector<Atom> grads = ctx.vjp_scope(b, p.fn.body, res_adj, want, {});
  std::vector<Atom> res = p.fn.body.result;
  for (const auto& g : grads) res.push_back(g);
  f.body = Body{b.take_stms(), res};
  for (const auto& a : res) f.rets.push_back(tm.at(a));
  return Prog{mod, std::move(f)};
}

} // namespace npad::ad
