// Forward-mode AD as a statement-level rewrite (Section 3): tangent
// statements are interleaved with primal statements; SOACs become combined
// constructs over (primal, tangent) bundles, which is the compiler-pass
// formulation of dual numbers.

#include <unordered_map>

#include "core/ad.hpp"
#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/patterns.hpp"
#include "ir/visit.hpp"

namespace npad::ad {

namespace {

using namespace ir;

class JvpCtx {
public:
  JvpCtx(Module& mod, TypeMap& tm) : mod_(mod), tm_(tm) {}

  // Tangent of an atom; missing tangents are zero (memoized per variable).
  Atom tan_atom(Builder& b, const Atom& a) {
    if (a.is_const()) return cf64(0.0);
    Var v = a.var();
    auto it = tan_.find(v.id);
    if (it != tan_.end()) return Atom(it->second);
    Type t = tm_.at(v);
    if (t.rank == 0 && !t.is_acc) {
      Var z = b.rebind(cf64(0.0), "zt");
      tan_[v.id] = z;
      return Atom(z);
    }
    Var z = b.zeros_like(v);
    tan_[v.id] = z;
    return Atom(z);
  }

  Var tan_var(Builder& b, const Atom& a) {
    Atom t = tan_atom(b, a);
    return t.is_var() ? t.var() : b.rebind(t, "zt");
  }

  void set_tan(Var v, Var t) { tan_[v.id] = t; }

  // Transforms a body into `b`, returning (results ++ tangents).
  std::vector<Atom> transform_body(Builder& b, const Body& body) {
    for (const auto& st : body.stms) transform_stm(b, st);
    std::vector<Atom> out = body.result;
    for (const auto& a : body.result) {
      if (tm_.at(a).elem == ScalarType::F64) out.push_back(tan_atom(b, a));
    }
    return out;
  }

  void transform_stm(Builder& b, const Stm& st) {
    std::visit(Overload{
                   [&](const OpAtom& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) bind_tan(b, st, 0, OpAtom{tan_atom(b, o.a)});
                   },
                   [&](const OpBin& o) { bin(b, st, o); },
                   [&](const OpUn& o) { un(b, st, o); },
                   [&](const OpSelect& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) {
                       bind_tan(b, st, 0, OpSelect{o.c, tan_atom(b, o.t), tan_atom(b, o.f)});
                     }
                   },
                   [&](const OpIndex& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) {
                       bind_tan(b, st, 0, OpIndex{tan_var(b, Atom(o.arr)), o.idx});
                     }
                   },
                   [&](const OpUpdate& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) {
                       bind_tan(b, st, 0,
                                OpUpdate{tan_var(b, Atom(o.arr)), o.idx, tan_atom(b, o.v)});
                     }
                   },
                   [&](const OpUpdAcc& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) {
                       bind_tan(b, st, 0,
                                OpUpdAcc{tan_var(b, Atom(o.acc)), o.idx, tan_atom(b, o.v)});
                     }
                   },
                   [&](const OpIota&) { emit_primal(b, st); },
                   [&](const OpLength&) { emit_primal(b, st); },
                   [&](const OpReplicate& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) bind_tan(b, st, 0, OpReplicate{o.n, tan_atom(b, o.v)});
                   },
                   [&](const OpZerosLike& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) bind_tan(b, st, 0, OpZerosLike{o.v});
                   },
                   [&](const OpScratch& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) bind_tan(b, st, 0, OpScratch{o.n, o.like});
                   },
                   [&](const OpReverse& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) bind_tan(b, st, 0, OpReverse{tan_var(b, Atom(o.arr))});
                   },
                   [&](const OpTranspose& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) {
                       bind_tan(b, st, 0, OpTranspose{tan_var(b, Atom(o.arr))});
                     }
                   },
                   [&](const OpCopy& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) bind_tan(b, st, 0, OpCopy{tan_var(b, Atom(o.v))});
                   },
                   [&](const OpIf& o) { ifexp(b, st, o); },
                   [&](const OpLoop& o) { loop(b, st, o); },
                   [&](const OpMap& o) { map(b, st, o); },
                   [&](const OpReduce& o) {
                     if (o.pre) throw ADError("jvp: differentiate before redomap fusion");
                     red_scan(b, st, o.op, o.neutral, o.args, false);
                   },
                   [&](const OpScan& o) {
                     if (o.pre) throw ADError("jvp: differentiate before redomap fusion");
                     red_scan(b, st, o.op, o.neutral, o.args, true);
                   },
                   [&](const OpHist& o) { hist(b, st, o); },
                   [&](const OpScatter& o) {
                     emit_primal(b, st);
                     if (diff(st, 0)) {
                       bind_tan(b, st, 0,
                                OpScatter{tan_var(b, Atom(o.dest)), o.inds,
                                          tan_var(b, Atom(o.vals))});
                     }
                   },
                   [&](const OpWithAcc& o) { withacc(b, st, o); },
               },
               st.e);
  }

private:
  static bool diff_t(const Type& t) { return t.elem == ScalarType::F64; }
  bool diff(const Stm& st, size_t i) const { return diff_t(st.types[i]); }

  void emit_primal(Builder& b, const Stm& st) { b.push(st); }

  void bind_tan(Builder& b, const Stm& st, size_t i, Exp e) {
    Var tv = mod_.fresh(mod_.name(st.vars[i]) + "_tan");
    tm_.bind(tv, st.types[i]);
    b.push(stm1(tv, st.types[i], std::move(e)));
    set_tan(st.vars[i], tv);
  }

  void bin(Builder& b, const Stm& st, const OpBin& o) {
    emit_primal(b, st);
    if (!diff(st, 0)) return;
    const Atom da = tan_atom(b, o.a), db = tan_atom(b, o.b);
    Var v = st.vars[0];
    Var t{};
    switch (o.op) {
      case BinOp::Add: t = b.add(da, db); break;
      case BinOp::Sub: t = b.sub(da, db); break;
      case BinOp::Mul: t = b.add(b.mul(da, o.b), b.mul(o.a, db)); break;
      case BinOp::Div:
        // d(a/b) = (da - v*db)/b
        t = b.div(b.sub(da, b.mul(Atom(v), db)), o.b);
        break;
      case BinOp::Pow: {
        // d(a^b) = da*b*a^(b-1) + db*v*log(a); the log term is emitted only
        // when the exponent has a (possibly) nonzero tangent.
        Var t1 = b.mul(da, b.mul(o.b, b.pow(o.a, b.sub(o.b, cf64(1.0)))));
        if (db.is_const() && db.cval().f == 0.0) {
          t = t1;
        } else {
          t = b.add(t1, b.mul(db, b.mul(Atom(v), b.log(o.a))));
        }
        break;
      }
      case BinOp::Min: t = b.select(b.le(o.a, o.b), da, db); break;
      case BinOp::Max: t = b.select(b.ge(o.a, o.b), da, db); break;
      default: return;  // comparisons / logic / mod carry no tangent
    }
    set_tan(v, t);
  }

  void un(Builder& b, const Stm& st, const OpUn& o) {
    emit_primal(b, st);
    if (!diff(st, 0)) return;
    if (o.op == UnOp::ToF64 && tm_.at(o.a).elem != ScalarType::F64) {
      return;  // cast from integral: zero tangent (left unmapped)
    }
    const Atom da = tan_atom(b, o.a);
    Var v = st.vars[0];
    Var t{};
    switch (o.op) {
      case UnOp::Neg: t = b.neg(da); break;
      case UnOp::Exp: t = b.mul(Atom(v), da); break;
      case UnOp::Log: t = b.div(da, o.a); break;
      case UnOp::Sqrt: t = b.div(da, b.mul(cf64(2.0), Atom(v))); break;
      case UnOp::Sin: t = b.mul(b.cos(o.a), da); break;
      case UnOp::Cos: t = b.neg(b.mul(b.sin(o.a), da)); break;
      case UnOp::Tanh: t = b.mul(b.sub(cf64(1.0), b.mul(Atom(v), Atom(v))), da); break;
      case UnOp::Abs: t = b.mul(b.un(UnOp::Sign, o.a), da); break;
      case UnOp::Sign: t = b.rebind(cf64(0.0), "zt"); break;
      case UnOp::LGamma: t = b.mul(b.un(UnOp::Digamma, o.a), da); break;
      case UnOp::ToF64: t = b.rebind(da, "ct"); break;
      case UnOp::Digamma:
        throw ADError("jvp: derivative of digamma (trigamma) not implemented");
      default: return;
    }
    set_tan(v, t);
  }

  void ifexp(Builder& b, const Stm& st, const OpIf& o) {
    Stm ns;
    ns.e = OpIf{o.c, make_body(transform_sub(*o.tb)), make_body(transform_sub(*o.fb))};
    bind_combined(b, st, std::move(ns));
  }

  Body transform_sub(const Body& body) {
    Builder cb(mod_, tm_);
    std::vector<Atom> res = transform_body(cb, body);
    return Body{cb.take_stms(), std::move(res)};
  }

  // Binds (orig vars ++ fresh tangent vars for f64 results) to a combined exp.
  void bind_combined(Builder& b, const Stm& st, Stm ns) {
    ns.vars = st.vars;
    ns.types = st.types;
    std::vector<std::pair<Var, Var>> pairs;
    for (size_t i = 0; i < st.vars.size(); ++i) {
      if (!diff(st, i)) continue;
      Var tv = mod_.fresh(mod_.name(st.vars[i]) + "_tan");
      ns.vars.push_back(tv);
      ns.types.push_back(st.types[i]);
      pairs.emplace_back(st.vars[i], tv);
    }
    b.push(std::move(ns));
    for (auto [pv, tv] : pairs) set_tan(pv, tv);
  }

  void loop(Builder& b, const Stm& st, const OpLoop& o) {
    OpLoop nl;
    nl.idx = o.idx;
    nl.count = o.count;
    nl.stripmine = o.stripmine;
    nl.checkpoint_entry = o.checkpoint_entry;
    nl.while_bound = o.while_bound;
    nl.params = o.params;
    nl.init = o.init;
    // Tangent loop parameters for differentiable loop-variant variables.
    std::vector<std::pair<size_t, Var>> tps;
    for (size_t i = 0; i < o.params.size(); ++i) {
      if (!diff_t(o.params[i].type)) continue;
      Var tp = mod_.fresh(mod_.name(o.params[i].var) + "_tan");
      tm_.bind(tp, o.params[i].type);
      nl.params.push_back(Param{tp, o.params[i].type});
      nl.init.push_back(tan_atom(b, o.init[i]));
      tps.emplace_back(i, tp);
    }
    if (o.while_cond) {
      // Wrap the condition to accept the extended parameter list.
      Lambda wc;
      std::vector<Atom> args;
      for (const auto& p : nl.params) {
        Var pv = mod_.fresh("w");
        tm_.bind(pv, p.type);
        wc.params.push_back(Param{pv, p.type});
        if (args.size() < o.params.size()) args.emplace_back(pv);
      }
      auto [stms, res] = inline_lambda(mod_, *o.while_cond, args);
      wc.body = Body{std::move(stms), std::move(res)};
      wc.rets = {boolean()};
      nl.while_cond = make_lambda(std::move(wc));
    }
    // Transform the body with tangents of loop params seeded.
    for (auto [i, tp] : tps) set_tan(o.params[i].var, tp);
    nl.body = make_body(transform_sub(*o.body));
    bind_combined(b, st, Stm{{}, {}, std::move(nl)});
  }

  void map(Builder& b, const Stm& st, const OpMap& o) {
    if (o.flat != FlatForm::None) throw ADError("jvp: differentiate before flattening");
    std::vector<Var> nargs = o.args;
    Lambda nf;
    nf.params = o.f->params;
    // Tangent args/params for differentiable inputs.
    std::vector<std::pair<size_t, Var>> tps;
    for (size_t i = 0; i < o.args.size(); ++i) {
      const Type pt = o.f->params[i].type;
      if (!diff_t(pt)) continue;
      nargs.push_back(tan_var(b, Atom(o.args[i])));
      Var tp = mod_.fresh("p_tan");
      tm_.bind(tp, pt);
      nf.params.push_back(Param{tp, pt});
      tps.emplace_back(i, tp);
    }
    for (auto [i, tp] : tps) set_tan(o.f->params[i].var, tp);
    nf.body = transform_sub(o.f->body);
    for (const auto& a : nf.body.result) nf.rets.push_back(tm_.at(a));
    bind_combined(b, st, Stm{{}, {}, OpMap{make_lambda(std::move(nf)), std::move(nargs)}});
  }

  // Combined reduce/scan over (primal, tangent) bundles with the lifted
  // operator; the lift of an associative differentiable operator is
  // associative (dual-number semiring).
  void red_scan(Builder& b, const Stm& st, const LambdaPtr& op, const std::vector<Atom>& neutral,
                const std::vector<Var>& args, bool is_scan) {
    const size_t k = args.size();
    // Tangent arrays are added only for differentiable (f64) arguments; this
    // keeps mixed reduces such as argmin (f64 values, i64 indices) liftable.
    std::vector<size_t> dargs;
    for (size_t i = 0; i < k; ++i) {
      if (diff_t(elem_of(tm_.at(args[i])))) dargs.push_back(i);
    }
    if (dargs.empty()) {
      emit_primal(b, st);
      return;
    }
    std::vector<Var> nargs = args;
    for (size_t i : dargs) nargs.push_back(tan_var(b, Atom(args[i])));
    std::vector<Atom> nne = neutral;
    for (size_t i : dargs) {
      const Type et = elem_of(tm_.at(args[i]));
      if (et.rank == 0) {
        nne.push_back(cf64(0.0));
      } else {
        assert(neutral[i].is_var());
        nne.emplace_back(b.zeros_like(neutral[i].var()));
      }
    }
    // Lifted operator: params (a.., a_tan.., c.., c_tan..), tangents only for
    // the differentiable positions.
    Lambda lop;
    std::vector<Atom> prim_args;
    std::vector<std::pair<size_t, Var>> tan_of_param;  // (prim_args index, tan var)
    auto add_params = [&](const char* nm, size_t group) {
      std::vector<Var> prim;
      for (size_t i = 0; i < k; ++i) {
        Var pv = mod_.fresh(nm);
        tm_.bind(pv, op->params[group * k + i].type);
        lop.params.push_back(Param{pv, op->params[group * k + i].type});
        prim.push_back(pv);
      }
      const size_t base = prim_args.size();
      for (size_t i = 0; i < k; ++i) prim_args.emplace_back(prim[i]);
      for (size_t i : dargs) {
        Var tv = mod_.fresh(std::string(nm) + "t");
        tm_.bind(tv, op->params[group * k + i].type);
        lop.params.push_back(Param{tv, op->params[group * k + i].type});
        tan_of_param.emplace_back(base + i, tv);
      }
    };
    add_params("a", 0);
    add_params("c", 1);
    auto [stms, res] = inline_lambda(mod_, *op, prim_args);
    Builder cb(mod_, tm_);
    for (auto [pi, tv] : tan_of_param) set_tan(prim_args[pi].var(), tv);
    for (const auto& s : stms) transform_stm(cb, s);
    std::vector<Atom> rres = res;
    for (size_t i : dargs) rres.push_back(tan_atom(cb, res[i]));
    lop.body = Body{cb.take_stms(), std::move(rres)};
    for (const auto& a : lop.body.result) lop.rets.push_back(tm_.at(a));
    Exp e = is_scan ? Exp(OpScan{make_lambda(std::move(lop)), nne, nargs, nullptr, 0})
                    : Exp(OpReduce{make_lambda(std::move(lop)), nne, nargs, nullptr, 0});
    bind_combined(b, st, Stm{{}, {}, std::move(e)});
  }

  void hist(Builder& b, const Stm& st, const OpHist& o) {
    if (o.pre) throw ADError("jvp: differentiate before histomap fusion");
    emit_primal(b, st);
    if (!diff(st, 0)) return;
    auto bop = recognize_binop(*o.op);
    if (!bop || *bop != BinOp::Add) {
      throw ADError("jvp: reduce_by_index only supported for (+) operators");
    }
    Var td = tan_var(b, Atom(o.dest));
    Var tv = tan_var(b, Atom(o.vals));
    bind_tan(b, st, 0, OpHist{o.op, cf64(0.0), td, o.inds, tv, nullptr, 0});
  }

  void withacc(Builder& b, const Stm& st, const OpWithAcc& o) {
    const size_t na = o.arrs.size();
    std::vector<Var> narrs = o.arrs;
    std::vector<size_t> diff_accs;
    for (size_t i = 0; i < na; ++i) {
      if (!diff_t(tm_.at(o.arrs[i]))) continue;
      narrs.push_back(tan_var(b, Atom(o.arrs[i])));
      diff_accs.push_back(i);
    }
    Lambda nf;
    nf.params = o.f->params;
    for (size_t i : diff_accs) {
      Var tp = mod_.fresh("acc_tan");
      Type t = o.f->params[i].type;
      tm_.bind(tp, t);
      nf.params.push_back(Param{tp, t});
      set_tan(o.f->params[i].var, tp);
    }
    Builder cb(mod_, tm_);
    for (const auto& s : o.f->body.stms) transform_stm(cb, s);
    // Result order must match narrs: primal accs, tangent accs, then extras
    // and the tangents of differentiable extras.
    std::vector<Atom> rres;
    for (size_t i = 0; i < na; ++i) rres.push_back(o.f->body.result[i]);
    for (size_t i : diff_accs) rres.push_back(tan_atom(cb, o.f->body.result[i]));
    for (size_t i = na; i < o.f->body.result.size(); ++i) rres.push_back(o.f->body.result[i]);
    std::vector<size_t> extra_diff;
    for (size_t i = na; i < o.f->body.result.size(); ++i) {
      if (diff_t(tm_.at(o.f->body.result[i]))) {
        extra_diff.push_back(i);
        rres.push_back(tan_atom(cb, o.f->body.result[i]));
      }
    }
    nf.body = Body{cb.take_stms(), std::move(rres)};
    for (const auto& a : nf.body.result) nf.rets.push_back(tm_.at(a));

    Stm ns;
    ns.e = OpWithAcc{std::move(narrs), make_lambda(std::move(nf))};
    // Primal array outputs, then tangent arrays, then extras, then extra tans.
    for (size_t i = 0; i < na; ++i) {
      ns.vars.push_back(st.vars[i]);
      ns.types.push_back(st.types[i]);
    }
    for (size_t i : diff_accs) {
      Var tv = mod_.fresh(mod_.name(st.vars[i]) + "_tan");
      tm_.bind(tv, st.types[i]);
      ns.vars.push_back(tv);
      ns.types.push_back(st.types[i]);
      set_tan(st.vars[i], tv);
    }
    for (size_t i = na; i < st.vars.size(); ++i) {
      ns.vars.push_back(st.vars[i]);
      ns.types.push_back(st.types[i]);
    }
    for (size_t i : extra_diff) {
      const size_t out_i = i;  // extras align: body result i <-> stm var i
      Var tv = mod_.fresh(mod_.name(st.vars[out_i]) + "_tan");
      tm_.bind(tv, st.types[out_i]);
      ns.vars.push_back(tv);
      ns.types.push_back(st.types[out_i]);
      set_tan(st.vars[out_i], tv);
    }
    b.push(std::move(ns));
  }

  Module& mod_;
  TypeMap& tm_;
  std::unordered_map<uint32_t, Var> tan_;
};

} // namespace

Prog jvp(const Prog& p) {
  auto mod = p.mod;  // names continue in the same module
  TypeMap tm = collect_types(p.fn);
  JvpCtx ctx(*mod, tm);
  Builder b(*mod, tm);

  Function f;
  f.name = p.fn.name + "_jvp";
  f.params = p.fn.params;
  for (const auto& pr : p.fn.params) {
    if (!differentiable(pr.type)) continue;
    Var tv = mod->fresh(mod->name(pr.var) + "_tan");
    tm.bind(tv, pr.type);
    f.params.push_back(Param{tv, pr.type});
    ctx.set_tan(pr.var, tv);
  }
  std::vector<Atom> res = ctx.transform_body(b, p.fn.body);
  f.body = Body{b.take_stms(), res};
  for (const auto& a : res) f.rets.push_back(tm.at(a));
  return Prog{mod, std::move(f)};
}

} // namespace npad::ad
