#!/usr/bin/env python3
"""Checks that relative markdown links in the repo resolve to real files.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, skips absolute URLs (http/https/
mailto) and pure in-page anchors (#...), strips #fragments from file targets,
and verifies the referenced path exists relative to the linking file.

Run from anywhere inside the repo: `python3 tools/check_md_links.py`.
Exits non-zero listing every dangling link (the CI docs job runs this to
catch stale cross-references when files move).
"""

import os
import re
import subprocess
import sys

INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def repo_root() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except Exception:
        return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def md_files(root: str):
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others", "--exclude-standard"],
            cwd=root, capture_output=True, text=True, check=True)
        files = [f for f in out.stdout.splitlines() if f.endswith(".md")]
        if files:
            return files
    except Exception:
        pass
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in {".git", "build"}]
        for f in filenames:
            if f.endswith(".md"):
                found.append(os.path.relpath(os.path.join(dirpath, f), root))
    return found


def main() -> int:
    root = repo_root()
    broken = []
    checked = 0
    for rel in md_files(root):
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as e:
            broken.append((rel, "<unreadable>", str(e)))
            continue
        targets = INLINE.findall(text) + REFDEF.findall(text)
        for target in targets:
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if file_part.startswith("/"):
                resolved = os.path.join(root, file_part.lstrip("/"))
            else:
                resolved = os.path.join(os.path.dirname(path), file_part)
            checked += 1
            if not os.path.exists(resolved):
                broken.append((rel, target, os.path.relpath(resolved, root)))
    if broken:
        print(f"{len(broken)} dangling markdown link(s):")
        for rel, target, resolved in broken:
            print(f"  {rel}: ({target}) -> missing {resolved}")
        return 1
    print(f"ok: {checked} relative links resolve across {len(md_files(root))} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
