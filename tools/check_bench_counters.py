#!/usr/bin/env python3
"""Launch-count regression guard over BENCH_*.json counter snapshots.

Every bench binary writes BENCH_<name>.json (bench/common.hpp) with the
interpreter's cumulative stats counters. This script enforces checked-in
ceilings on the launch counters that the execution-plan + inlined-SOAC work
drove down, so a regression that quietly reintroduces per-row or per-gate
kernel launches fails CI instead of only showing up in the perf trajectory.

Counters are cumulative over the whole binary run and google-benchmark picks
iteration counts from wall-clock (--benchmark_min_time), so absolute counter
values scale with machine speed. The ceilings are therefore *per measured
benchmark iteration*: total counter value divided by the summed iteration
count of the interpreter-driven benchmarks (matched by name substring).
Setup work (program optimization, warm-up runs) folds into the numerator, so
ceilings carry generous headroom over the measured steady-state rate — they
are meant to catch order-of-magnitude regressions, not noise.

Usage: check_bench_counters.py [dir-with-BENCH-json-files]   (default: .)
"""

import json
import os
import sys

# (json file, counter, name substrings of interpreter-driven benchmarks,
#  per-iteration ceiling, measured per-iteration rate when the ceiling was
#  checked in).
#
# table6_lstm: before compiled execution plans + inlined inner SOACs, one
# objective+gradient evaluation issued ~60k batched spans per iteration pair
# (535k per smoke run); measured now ~680/iter. Ceiling 2000 keeps >10x of
# the win locked in.
#
# table3_kmeans: the AD grad/hvp programs used to issue ~120k spans per
# iteration at smoke scale — one launch per (point, centroid) pair inside
# the general per-point gradient lambdas. Row-stream kernel params plus
# virtual value-maps and multi-accumulator inline folds now compile those
# lambdas whole (the hvp's (primal, tangent) reduce pairs included), so the
# per-point SOAC nests run as single kernel launches: measured ~770/iter.
# Ceiling 10000 locks in >12x of the win while leaving headroom for
# slow-machine iteration-count effects. general_maps tracks the per-point
# lambdas the kernel tier deliberately leaves general (the argmin-driven
# scatter body): measured ~1/iter; ceiling 50 fails CI if whole-lambda
# kernelization silently regresses to per-point general maps.
#
# table5_gmm: the GMM objective+gradient pair used to issue ~14.1k batched
# spans per measured iteration (per-(shape, K) launches of the log-sum-exp
# rows); inline SOAC kernelization brings it to ~430/iter. Ceiling 5000
# keeps >3x of the win locked in.
CEILINGS = [
    ("BENCH_table6_lstm.json", "batched_launches", ["npad_"], 2000, 680),
    ("BENCH_table3_kmeans.json", "batched_launches", ["ad_"], 10000, 770),
    ("BENCH_table3_kmeans.json", "general_maps", ["ad_"], 50, 1),
    ("BENCH_table5_gmm.json", "batched_launches", ["npad_"], 5000, 430),
]

# Counter-over-counter ceilings: (json file, numerator counters (summed),
# denominator counter, ceiling, measured ratio when checked in). Used where
# the natural per-unit denominator is itself a counter rather than benchmark
# iterations — for the serving snapshot, "per served request".
#
# serving/serve_batches: executed groups per request. Cross-request batching
# is the whole point of the serving tier — a lone closed-loop client runs at
# 1.0 (every request its own group), the 8- and 64-client levels fill
# max_batch-sized groups, and the measured blend sits near 0.23. A ratio
# drifting toward 1.0 means stacking silently stopped grouping (key
# mismatch, window regression), so 0.7 fails CI well before that.
#
# serving/launches: execution-tier span launches per request (vexec when the
# SIMD tier is on, the scalar batched kernel machine when it is off — one of
# the two is always zero). Measured ~28/request on the 3:1 objective:
# jacobian gmm mix; 500 guards against per-row launches sneaking into the
# stacked lowering while staying insensitive to the client-mix blend.
RATIO_CEILINGS = [
    (
        "BENCH_serving.json",
        ["serve_batches"],
        "serve_requests",
        0.7,
        0.23,
    ),
    (
        "BENCH_serving.json",
        ["vexec_launches", "batched_launches"],
        "serve_requests",
        500,
        28,
    ),
]


def main() -> int:
    bench_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    for fname, counter, name_subs, ceiling, measured in CEILINGS:
        path = os.path.join(bench_dir, fname)
        if not os.path.exists(path):
            failures.append(f"{fname}: missing (bench smoke did not produce it)")
            continue
        with open(path) as f:
            data = json.load(f)
        value = data.get("counters", {}).get(counter)
        if value is None:
            failures.append(f"{fname}: counter {counter!r} absent from JSON")
            continue
        iters = sum(
            r["n"]
            for r in data.get("results", [])
            if any(sub in r["name"] for sub in name_subs)
        )
        if iters <= 0:
            failures.append(
                f"{fname}: no benchmark matching {name_subs} reported iterations"
            )
            continue
        per_iter = value / iters
        status = "OK" if per_iter <= ceiling else "FAIL"
        print(
            f"{status:4} {fname}: {counter}={value} over {iters} iter(s) -> "
            f"{per_iter:.0f}/iter (ceiling {ceiling}, was {measured} when checked in)"
        )
        if per_iter > ceiling:
            failures.append(
                f"{fname}: {counter} at {per_iter:.0f}/iter exceeds ceiling {ceiling} "
                f"— a launch-count regression (per-row/per-gate launches reintroduced?)"
            )
    for fname, num_counters, den_counter, ceiling, measured in RATIO_CEILINGS:
        path = os.path.join(bench_dir, fname)
        if not os.path.exists(path):
            failures.append(f"{fname}: missing (bench smoke did not produce it)")
            continue
        with open(path) as f:
            counters = json.load(f).get("counters", {})
        missing = [c for c in num_counters + [den_counter] if c not in counters]
        if missing:
            failures.append(f"{fname}: counter(s) {missing} absent from JSON")
            continue
        den = counters[den_counter]
        if den <= 0:
            failures.append(f"{fname}: denominator {den_counter!r} is zero")
            continue
        num = sum(counters[c] for c in num_counters)
        rate = num / den
        status = "OK" if rate <= ceiling else "FAIL"
        print(
            f"{status:4} {fname}: {'+'.join(num_counters)}={num} / {den_counter}={den} "
            f"-> {rate:.2f}/request (ceiling {ceiling}, was {measured} when checked in)"
        )
        if rate > ceiling:
            failures.append(
                f"{fname}: {'+'.join(num_counters)} at {rate:.2f} per {den_counter} "
                f"exceeds ceiling {ceiling} — the serving batcher stopped amortizing"
            )
    if failures:
        print("\nlaunch-count regression guard failed:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("launch-count regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
