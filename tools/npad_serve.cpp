// npad_serve: gradient-serving HTTP front-end. Registers the built-in
// AD-compiled programs, stands up the cross-request batcher and the
// blocking-socket HTTP server, and runs until SIGINT/SIGTERM.
//
//   ./npad_serve [--host A] [--port P] [--max-batch N] [--window-us U]
//                [--workers W] [--no-stack]
//
// See src/serve/README.md for the API and batching semantics.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/batcher.hpp"
#include "serve/http.hpp"
#include "serve/registry.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host A] [--port P] [--max-batch N] [--window-us U]\n"
               "          [--workers W] [--no-stack]\n",
               argv0);
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  npad::serve::BatcherOptions bopts;
  npad::serve::HttpOptions hopts;
  hopts.host = "127.0.0.1";
  hopts.port = 8080;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--host") hopts.host = next();
    else if (a == "--port") hopts.port = std::atoi(next());
    else if (a == "--max-batch") bopts.max_batch = std::atoi(next());
    else if (a == "--window-us") bopts.window_us = std::atoll(next());
    else if (a == "--workers") bopts.workers = std::atoi(next());
    else if (a == "--no-stack") bopts.stack = false;
    else usage(argv[0]);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::fprintf(stderr, "npad_serve: compiling registered programs...\n");
  npad::serve::register_builtin_programs();
  std::string names;
  for (const auto& n : npad::serve::Registry::global().names()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  std::fprintf(stderr, "npad_serve: programs: %s\n", names.c_str());

  npad::serve::Batcher batcher(bopts);
  npad::serve::HttpServer server(batcher, hopts);
  server.start();
  std::fprintf(stderr,
               "npad_serve: listening on %s:%d (max_batch=%d window_us=%lld workers=%d)\n",
               hopts.host.c_str(), server.port(), bopts.max_batch,
               static_cast<long long>(bopts.window_us), bopts.workers);
  std::fflush(stderr);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "npad_serve: shutting down\n");
  server.stop();
  batcher.stop();
  return 0;
}
