// Reproduces Figure 1 of the paper: the program
//   P(x0, x1) = (x1 * sin x0, x0 * x1)
// printed before and after the forward-mode and reverse-mode AD transforms.

#include <iostream>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/print.hpp"

using namespace npad;
using namespace npad::ir;

int main() {
  ProgBuilder pb("P");
  Var x0 = pb.param("x0", f64());
  Var x1 = pb.param("x1", f64());
  Builder& b = pb.body();
  Var t0 = b.sin(x0);
  Var t1 = b.mul(x1, t0);
  Var t2 = b.mul(x0, x1);
  Prog p = pb.finish({Atom(t1), Atom(t2)});

  std::cout << "===== Figure 1(a): the program P =====\n";
  print_prog(std::cout, p);
  std::cout << "\n===== Figure 1(b): forward mode (jvp) =====\n";
  print_prog(std::cout, ad::jvp(p));
  std::cout << "\n===== Figure 1(c): reverse mode (vjp) =====\n";
  print_prog(std::cout, ad::vjp(p));
  return 0;
}
