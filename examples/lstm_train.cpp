// Trains a small LSTM (Section 7.7 architecture) by gradient descent on the
// IR objective differentiated with vjp, and cross-checks the first gradient
// against the fused manual implementation (the cuDNN stand-in).

#include <cmath>
#include <cstdio>

#include "apps/lstm.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main() {
  support::Rng rng(55);
  auto L = apps::lstm_gen(rng, 4, 6, 8, 6);
  ir::Prog obj = apps::lstm_ir_objective();
  ir::Prog grad = ad::vjp(obj);
  ir::typecheck(grad);
  rt::Interp interp;

  // Cross-check AD vs the hand-derived backward on the initial weights.
  auto manual = apps::lstm_manual(L);
  {
    auto args = apps::lstm_ir_args(L);
    args.emplace_back(1.0);
    auto out = interp.run(grad, args);
    auto dwx = rt::to_f64_vec(rt::as_array(out[1]));
    double max_err = 0;
    for (size_t i = 0; i < dwx.size(); ++i) {
      max_err = std::max(max_err, std::fabs(dwx[i] - manual.d_wx[i]));
    }
    std::printf("AD vs manual backward: max |d_wx| error = %.3e\n", max_err);
  }

  const double lr = 1e-4;  // descend on sum ||h_t||^2 (drives activity down)
  for (int it = 0; it < 10; ++it) {
    auto args = apps::lstm_ir_args(L);
    args.emplace_back(1.0);
    auto out = interp.run(grad, args);
    if (it % 3 == 0) std::printf("iter %2d: objective = %.6f\n", it, rt::as_f64(out[0]));
    auto dwx = rt::to_f64_vec(rt::as_array(out[1]));
    auto dwh = rt::to_f64_vec(rt::as_array(out[2]));
    auto db = rt::to_f64_vec(rt::as_array(out[3]));
    for (size_t i = 0; i < L.wx.size(); ++i) L.wx[i] -= lr * dwx[i];
    for (size_t i = 0; i < L.wh.size(); ++i) L.wh[i] -= lr * dwh[i];
    for (size_t i = 0; i < L.b.size(); ++i) L.b[i] -= lr * db[i];
  }
  std::printf("done\n");
  return 0;
}
