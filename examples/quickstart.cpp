// Quickstart: build a small data-parallel program with the builder API,
// differentiate it with reverse mode (vjp), and run both on the parallel
// interpreter.
//
//   f(xs, k) = sum_i k * xs_i^2         df/dxs_i = 2 k xs_i, df/dk = sum xs_i^2

#include <cstdio>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/print.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;
using namespace npad::ir;

int main() {
  // 1. Build the program.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var k = pb.param("k", f64());
  Builder& b = pb.body();
  Var sq = b.map1(b.lam({f64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(k, c.mul(p[0], p[0])))};
                        }),
                  {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {sq});
  Prog f = pb.finish({Atom(s)});
  typecheck(f);

  // 2. Differentiate: vjp adds one seed input and returns input adjoints.
  Prog grad = ad::vjp(f);
  typecheck(grad);

  // 3. Run.
  rt::ArrayVal x = rt::make_f64_array({1.0, 2.0, 3.0}, {3});
  auto out = rt::run_prog(grad, {x, 0.5, 1.0});
  std::printf("f(x)      = %g\n", rt::as_f64(out[0]));
  auto dxs = rt::to_f64_vec(rt::as_array(out[1]));
  std::printf("df/dxs    = [%g, %g, %g]  (expect [1, 2, 3])\n", dxs[0], dxs[1], dxs[2]);
  std::printf("df/dk     = %g           (expect 14)\n", rt::as_f64(out[2]));
  return 0;
}
