// Case study 1 (Section 7.4): k-means clustering solved with Newton's
// method, where the gradient comes from vjp and the Hessian diagonal from
// nesting jvp inside vjp — the composition of the two AD transformations.

#include <cstdio>

#include "apps/kmeans.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main() {
  support::Rng rng(123);
  const int64_t n = 400, d = 2, k = 3;
  auto data = apps::kmeans_gen(rng, n, d, k);

  ir::Prog cost = apps::kmeans_ir_cost();
  ir::Prog grad = ad::vjp(cost);       // (C, P, seed) -> (cost, dC, dP)
  ir::Prog hess = ad::jvp(grad);       // + tangents: Hessian-vector products
  ir::typecheck(hess);
  rt::Interp interp;

  std::vector<double> C = data.centroids;
  rt::ArrayVal P = rt::make_f64_array(data.points, {n, d});
  rt::ArrayVal Pz = rt::ArrayVal::alloc(ir::ScalarType::F64, {n, d});

  for (int it = 0; it < 8; ++it) {
    rt::ArrayVal Cv = rt::make_f64_array(C, {k, d});
    auto gout = interp.run(grad, {Cv, P, 1.0});
    const double cost_v = rt::as_f64(gout[0]);
    auto g = rt::to_f64_vec(rt::as_array(gout[1]));
    // Hessian diagonal, one jvp probe per coordinate (exploiting that the
    // k-means Hessian is diagonal, as the paper notes).
    std::vector<double> hdiag(static_cast<size_t>(k * d));
    for (int64_t e = 0; e < k * d; ++e) {
      std::vector<double> dir(static_cast<size_t>(k * d), 0.0);
      dir[static_cast<size_t>(e)] = 1.0;
      auto hout = interp.run(hess, {Cv, P, 1.0, rt::make_f64_array(dir, {k, d}), Pz, 0.0});
      hdiag[static_cast<size_t>(e)] =
          rt::to_f64_vec(rt::as_array(hout[4]))[static_cast<size_t>(e)];
    }
    std::printf("iter %d: cost = %.6f\n", it, cost_v);
    for (int64_t e = 0; e < k * d; ++e) {
      if (hdiag[static_cast<size_t>(e)] > 1e-12) {
        C[static_cast<size_t>(e)] -= g[static_cast<size_t>(e)] / hdiag[static_cast<size_t>(e)];
      }
    }
  }
  std::printf("final centroids:\n");
  for (int64_t c = 0; c < k; ++c) {
    std::printf("  c%lld = (%.3f, %.3f)\n", static_cast<long long>(c),
                C[static_cast<size_t>(c * d)], C[static_cast<size_t>(c * d + 1)]);
  }
  return 0;
}
