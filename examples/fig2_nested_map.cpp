// Reproduces Figure 2 of the paper: the reverse-AD code of a perfectly
// nested map contains redundant forward-sweep re-executions whose results
// are dead; dead-code elimination removes them, so perfect nests suffer no
// re-execution overhead.

#include <iostream>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/print.hpp"
#include "opt/simplify.hpp"

using namespace npad;
using namespace npad::ir;

int main() {
  // map (\c as -> if c then copy as else map (\a -> a*a) as) cs ass
  ProgBuilder pb("fig2");
  Var cs = pb.param("cs", arr(ScalarType::Bool, 1));
  Var ass = pb.param("ass", arr_f64(2));
  Builder& b = pb.body();
  Var xss = b.map(b.lam({boolean(), arr_f64(1)},
                        [](Builder& c, const std::vector<Var>& p) {
                          auto r = c.if_(
                              Atom(p[0]),
                              [&](Builder& tb) {
                                return std::vector<Atom>{Atom(tb.copy(p[1]))};
                              },
                              [&](Builder& fb) {
                                Var sq = fb.map1(
                                    fb.lam({f64()},
                                           [](Builder& cc, const std::vector<Var>& q) {
                                             return std::vector<Atom>{Atom(cc.mul(q[0], q[0]))};
                                           }),
                                    {p[1]});
                                return std::vector<Atom>{Atom(sq)};
                              });
                          return std::vector<Atom>{Atom(r[0])};
                        }),
                  {cs, ass})[0];
  Prog p = pb.finish({Atom(xss)});

  Prog g = ad::vjp(p);
  std::cout << "===== reverse AD, before optimization ("
            << count_stms(g.fn.body) << " statements) =====\n";
  print_prog(std::cout, g);

  // Drop the primal output (the caller only wants the gradient), then DCE.
  g.fn.body.result.erase(g.fn.body.result.begin());
  g.fn.rets.erase(g.fn.rets.begin());
  Prog opt = opt::simplify(g);
  std::cout << "\n===== after dead-code elimination ("
            << count_stms(opt.fn.body) << " statements) =====\n";
  print_prog(std::cout, opt);
  std::cout << "\nThe re-executed forward sweeps of the perfect nest are dead "
               "code and have been removed (Section 4.1).\n";
  return 0;
}
