// Fits a diagonal GMM by gradient descent, with the gradient produced by the
// reverse-mode transformation of the IR objective (Section 7.6 workload).

#include <cstdio>

#include "apps/gmm.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main() {
  support::Rng rng(321);
  auto g = apps::gmm_gen(rng, 200, 4, 3);
  ir::Prog obj = apps::gmm_ir_objective();
  ir::Prog grad = ad::vjp(obj);
  ir::typecheck(grad);
  rt::Interp interp;

  const double lr = 1e-3;
  for (int it = 0; it < 20; ++it) {
    auto args = apps::gmm_ir_args(g);
    args.emplace_back(1.0);
    auto out = interp.run(grad, args);
    if (it % 5 == 0) std::printf("iter %2d: -log likelihood proxy = %.6f\n", it, -rt::as_f64(out[0]));
    auto da = rt::to_f64_vec(rt::as_array(out[1]));
    auto dm = rt::to_f64_vec(rt::as_array(out[2]));
    auto dq = rt::to_f64_vec(rt::as_array(out[3]));
    for (size_t i = 0; i < g.alphas.size(); ++i) g.alphas[i] += lr * da[i];
    for (size_t i = 0; i < g.means.size(); ++i) g.means[i] += lr * dm[i];
    for (size_t i = 0; i < g.qs.size(); ++i) g.qs[i] += lr * dq[i];
  }
  std::printf("done; mixture weights (logits): ");
  for (double a : g.alphas) std::printf("%.3f ", a);
  std::printf("\n");
  return 0;
}
