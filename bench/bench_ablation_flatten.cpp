// Ablation F: flattening of regular nested parallelism (opt/flatten.cpp).
//
// The general nested path pays one full interpreter apply() — environment
// frame, Value vectors, per-row kernel-launch setup — per outer row; the
// flattened path runs the whole nest as ONE launch. Workloads are the
// matmul-shaped nests of the paper tables:
//
//  - map-of-map: ys = map(λrow. map(g, row)) — collapsed to a single
//    kernel over the fused n·m extent (@flat);
//  - map-of-sum: map(λrow. reduce(+, 0, row)) — the hand-tier segmented
//    reduction (@segred), kmeans' distance row sums;
//  - map-of-dot: map(λra,rb. reduce(+, 0, map(*, ra, rb))) — fused to a
//    redomap nest, then a kernel-tier segmented reduction (@segred with a
//    compiled pre-lambda), GMM/LSTM's per-row contractions;
//  - map-of-lse: a multi-statement log-sum-exp fold per row, kernel tier.
//
// Grid: {general, flat} x {W=1, 8} at n·m ≈ 1M in two aspect ratios (many
// short rows, where per-row launch setup dominates, and fewer long rows).
// The acceptance signal is flat-W8 vs general-W8 at n·m ≈ 1M, recorded in
// BENCH_ablation_flatten.json together with the flattened_maps /
// segred_launches / segred_segments / hand_* counters.

#include "common.hpp"

#include <functional>

#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/flatten.hpp"
#include "opt/fuse.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

using namespace npad;
using namespace npad::ir;

namespace {

// map(λrow. map(g, row)) with an affine scalar body.
Prog map_of_map_prog() {
  ProgBuilder pb("mm");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              return std::vector<Atom>{Atom(c.map1(
                  c.lam({f64()},
                        [](Builder& cc, const std::vector<Var>& p) {
                          // Deliberately light body: the ablation measures
                          // per-row launch overhead, not scalar throughput.
                          Var t = cc.mul(p[0], cf64(1.3));
                          return std::vector<Atom>{Atom(cc.add(t, cf64(0.2)))};
                        }),
                  {row[0]}))};
            }),
      {xss});
  return pb.finish({Atom(out)});
}

// map(λrow. reduce(+, 0, row)).
Prog map_of_sum_prog() {
  ProgBuilder pb("ms");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.add_op(), cf64(0.0), {row[0]}))};
                         }),
                   {xss});
  return pb.finish({Atom(out)});
}

// map(λra,rb. reduce(+, 0, map(*, ra, rb))) — fused into a redomap nest.
Prog map_of_dot_prog() {
  ProgBuilder pb("md");
  Var as = pb.param("as", arr_f64(2));
  Var bs = pb.param("bs", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1), arr_f64(1)},
            [](Builder& c, const std::vector<Var>& rows) {
              Var prods = c.map1(c.lam({f64(), f64()},
                                       [](Builder& cc, const std::vector<Var>& p) {
                                         return std::vector<Atom>{Atom(cc.mul(p[0], p[1]))};
                                       }),
                                 {rows[0], rows[1]});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {prods}))};
            }),
      {as, bs});
  return pb.finish({Atom(out)});
}

// map(λrow. reduce(lse, -inf, row)) — multi-statement kernel-tier fold.
Prog map_of_lse_prog() {
  ProgBuilder pb("ml");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              LambdaPtr op = c.lam({f64(), f64()}, [](Builder& cc, const std::vector<Var>& p) {
                Var m = cc.max(p[0], p[1]);
                Var ea = cc.exp(Atom(cc.sub(p[0], m)));
                Var eb = cc.exp(Atom(cc.sub(p[1], m)));
                return std::vector<Atom>{Atom(cc.add(m, Atom(cc.log(Atom(cc.add(ea, eb))))))};
              });
              return std::vector<Atom>{
                  Atom(c.reduce1(std::move(op), cf64(-1e300), {row[0]}))};
            }),
      {xss});
  return pb.finish({Atom(out)});
}

} // namespace

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  // Two aspect ratios of the same ~1M-element space (the CI target at
  // scale 1): many short rows — where per-row apply()/launch setup is the
  // whole cost — and fewer long rows.
  const int64_t n_wide = 8192 * S, m_wide = 128;
  const int64_t n_long = 1024 * S, m_long = 1024;
  support::Rng rng(53);

  auto prep = [&](Prog p, bool fuse_first) {
    ir::typecheck(p);
    if (fuse_first) {
      opt::FuseStats fs;
      p = opt::fuse_maps(p, &fs);
      ir::typecheck(p);
    }
    opt::FlattenStats st;
    Prog q = opt::flatten_nested(p, &st);
    ir::typecheck(q);
    return std::pair<Prog, Prog>{std::move(p), std::move(q)};  // {general, flat}
  };
  auto [mm_gen, mm_flat] = prep(map_of_map_prog(), false);
  auto [ms_gen, ms_flat] = prep(map_of_sum_prog(), false);
  auto [md_gen, md_flat] = prep(map_of_dot_prog(), true);
  auto [ml_gen, ml_flat] = prep(map_of_lse_prog(), false);

  auto mk_args = [&](int64_t n, int64_t m, int copies) {
    std::vector<rt::Value> args;
    for (int i = 0; i < copies; ++i) {
      args.push_back(rt::make_f64_array(
          rng.uniform_vec(static_cast<size_t>(n * m), -1.0, 1.0), {n, m}));
    }
    return args;
  };
  const int64_t n_short = 65536 * S, m_short = 16;
  auto wide1 = mk_args(n_wide, m_wide, 1);
  auto wide2 = mk_args(n_wide, m_wide, 2);
  auto long1 = mk_args(n_long, m_long, 1);
  auto short1 = mk_args(n_short, m_short, 1);
  auto short2 = mk_args(n_short, m_short, 2);

  rt::Interp g1({.parallel = true, .use_kernels = true, .kernel_lanes = 1});
  rt::Interp g8({.parallel = true, .use_kernels = true, .kernel_lanes = 8});
  rt::Interp f1({.parallel = true, .use_kernels = true, .kernel_lanes = 1});
  rt::Interp f8({.parallel = true, .use_kernels = true, .kernel_lanes = 8});

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  };
  reg("mapmap/general-w1", [&] { benchmark::DoNotOptimize(g1.run(mm_gen, wide1)); });
  reg("mapmap/general-w8", [&] { benchmark::DoNotOptimize(g8.run(mm_gen, wide1)); });
  reg("mapmap/flat-w1", [&] { benchmark::DoNotOptimize(f1.run(mm_flat, wide1)); });
  reg("mapmap/flat-w8", [&] { benchmark::DoNotOptimize(f8.run(mm_flat, wide1)); });
  reg("mapmap-long/general-w8", [&] { benchmark::DoNotOptimize(g8.run(mm_gen, long1)); });
  reg("mapmap-long/flat-w8", [&] { benchmark::DoNotOptimize(f8.run(mm_flat, long1)); });
  reg("mapsum/general-w8", [&] { benchmark::DoNotOptimize(g8.run(ms_gen, wide1)); });
  reg("mapsum/flat-w8", [&] { benchmark::DoNotOptimize(f8.run(ms_flat, wide1)); });
  reg("mapdot/general-w1", [&] { benchmark::DoNotOptimize(g1.run(md_gen, wide2)); });
  reg("mapdot/general-w8", [&] { benchmark::DoNotOptimize(g8.run(md_gen, wide2)); });
  reg("mapdot/flat-w1", [&] { benchmark::DoNotOptimize(f1.run(md_flat, wide2)); });
  reg("mapdot/flat-w8", [&] { benchmark::DoNotOptimize(f8.run(md_flat, wide2)); });
  reg("maplse/general-w8", [&] { benchmark::DoNotOptimize(g8.run(ml_gen, wide1)); });
  reg("maplse/flat-w8", [&] { benchmark::DoNotOptimize(f8.run(ml_flat, wide1)); });
  reg("mapsum-short/general-w8", [&] { benchmark::DoNotOptimize(g8.run(ms_gen, short1)); });
  reg("mapsum-short/flat-w8", [&] { benchmark::DoNotOptimize(f8.run(ms_flat, short1)); });
  reg("mapdot-short/general-w8", [&] { benchmark::DoNotOptimize(g8.run(md_gen, short2)); });
  reg("mapdot-short/flat-w8", [&] { benchmark::DoNotOptimize(f8.run(md_flat, short2)); });

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Workload (n x m)", "general (ms)", "flat (ms)", "speedup"});
  auto row = [&](const char* label, const char* gk, const char* fk) {
    t.add_row({label, support::Table::fmt(col.ms(gk)), support::Table::fmt(col.ms(fk)),
               bench::ratio(col.ms(gk), col.ms(fk))});
  };
  row("map-of-map 8192x128, W=1", "mapmap/general-w1", "mapmap/flat-w1");
  row("map-of-map 8192x128, W=8", "mapmap/general-w8", "mapmap/flat-w8");
  row("map-of-map 1024x1024, W=8", "mapmap-long/general-w8", "mapmap-long/flat-w8");
  row("map-of-sum 8192x128, W=8", "mapsum/general-w8", "mapsum/flat-w8");
  row("map-of-dot 8192x128, W=1", "mapdot/general-w1", "mapdot/flat-w1");
  row("map-of-dot 8192x128, W=8", "mapdot/general-w8", "mapdot/flat-w8");
  row("map-of-lse 8192x128, W=8", "maplse/general-w8", "maplse/flat-w8");
  row("map-of-sum 65536x16, W=8", "mapsum-short/general-w8", "mapsum-short/flat-w8");
  row("map-of-dot 65536x16, W=8", "mapdot-short/general-w8", "mapdot-short/flat-w8");
  std::cout << "\nAblation F: flattened nested parallelism vs per-row launches\n";
  t.print();

  // Acceptance signals: flattened_maps/segred_launches nonzero on the flat
  // interpreters, and the flat-W8 vs general-W8 ratios at n·m ≈ 1M
  // (map-of-sum 8192x128 is the ≥3x acceptance row; the short-row shapes
  // show the trend as per-row setup dominates).
  std::map<std::string, uint64_t> counters = f8.stats().counters();
  for (const auto& [k, v] : g8.stats().counters()) counters["general8_" + k] = v;
  auto record = [&](const char* key, const char* gk, const char* fk) {
    const double g = col.ms(gk), f = col.ms(fk);
    if (g > 0 && f > 0) counters[key] = static_cast<uint64_t>(100.0 * g / f);
  };
  record("speedup_mapsum_w8_x100", "mapsum/general-w8", "mapsum/flat-w8");
  record("speedup_mapdot_w8_x100", "mapdot/general-w8", "mapdot/flat-w8");
  record("speedup_mapsum_short_w8_x100", "mapsum-short/general-w8", "mapsum-short/flat-w8");
  record("speedup_mapdot_short_w8_x100", "mapdot-short/general-w8", "mapdot-short/flat-w8");
  const double sgen8 = col.ms("mapsum/general-w8");
  const double sflat8 = col.ms("mapsum/flat-w8");
  if (sgen8 > 0 && sflat8 > 0) {
    std::cout << "\nflattened map-of-sum W=8 speedup over general nested (1M): "
              << bench::ratio(sgen8, sflat8) << "\n";
  }
  bench::write_bench_json("ablation_flatten", col, counters);
  return 0;
}
