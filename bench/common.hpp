#pragma once

// Shared harness for the paper-table benchmark binaries. Each binary
// registers its measurements as google-benchmark benchmarks, runs them under
// a collecting reporter, and then prints the corresponding paper table with
// the paper's published value next to the measured one.
//
// NPAD_SCALE (environment, default 1) multiplies the workload sizes; all
// shipped defaults are laptop-scale (the runtime substrate is an interpreter
// standing in for the paper's GPU backend — see DESIGN.md §1).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>

#include "support/table.hpp"

namespace npad::bench {

class Collector : public benchmark::BenchmarkReporter {
public:
  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      if (run.error_occurred) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      // Strip decoration suffixes like "/min_time:0.050".
      std::string name = run.benchmark_name();
      if (auto pos = name.find("/min_time"); pos != std::string::npos) name.resize(pos);
      ms_[name] = 1e3 * run.real_accumulated_time / iters;
    }
  }

  double ms(const std::string& name) const {
    auto it = ms_.find(name);
    return it == ms_.end() ? 0.0 : it->second;
  }

private:
  std::map<std::string, double> ms_;
};

inline int64_t scale_factor() {
  if (const char* e = std::getenv("NPAD_SCALE")) {
    const int64_t v = std::atoll(e);
    if (v > 0) return v;
  }
  return 1;
}

// Runs all registered benchmarks and returns the collected timings.
inline Collector run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  Collector c;
  benchmark::RunSpecifiedBenchmarks(&c);
  return c;
}

inline std::string ratio(double num, double den, int prec = 2) {
  if (den <= 0) return "-";
  return support::Table::fmt(num / den, prec) + "x";
}

} // namespace npad::bench
