#pragma once

// Shared harness for the paper-table benchmark binaries. Each binary
// registers its measurements as google-benchmark benchmarks, runs them under
// a collecting reporter, and then prints the corresponding paper table with
// the paper's published value next to the measured one.
//
// NPAD_SCALE (environment, default 1) multiplies the workload sizes; all
// shipped defaults are laptop-scale (the runtime substrate is an interpreter
// standing in for the paper's GPU backend — see src/runtime/README.md).
//
// Besides the human-readable tables, each binary writes BENCH_<name>.json
// (benchmark timings + interpreter stats counters) for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/buffer_pool.hpp"
#include "support/table.hpp"

namespace npad::bench {

struct Measurement {
  double mean_ms = 0.0;
  double stddev_ms = 0.0;  // sample stddev across repetition means
  int64_t iterations = 0;  // total iterations summed over repetitions
  // Accumulation state across repetitions (per-iteration ms of each rep).
  double sum_ms = 0.0;
  double sumsq_ms = 0.0;
  int64_t samples = 0;
};

class Collector : public benchmark::BenchmarkReporter {
public:
  bool ReportContext(const Context&) override { return true; }

  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      if (run.error_occurred) continue;
      // Aggregate rows (mean/median/stddev/cv) are derived from the same
      // repetition runs we already fold in below; skip them so they do not
      // double-count.
      if (run.run_type == Run::RT_Aggregate) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      // Strip decoration suffixes like "/min_time:0.050".
      std::string name = run.benchmark_name();
      if (auto pos = name.find("/min_time"); pos != std::string::npos) name.resize(pos);
      if (auto pos = name.find("/repeats"); pos != std::string::npos) name.resize(pos);
      auto& m = runs_[name];
      const double per_iter_ms = 1e3 * run.real_accumulated_time / iters;
      m.sum_ms += per_iter_ms;
      m.sumsq_ms += per_iter_ms * per_iter_ms;
      m.samples += 1;
      m.iterations += run.iterations;
      m.mean_ms = m.sum_ms / static_cast<double>(m.samples);
      // Sample stddev over repetition means; 0 until a second repetition
      // lands (the default repetition count below guarantees one does).
      m.stddev_ms =
          m.samples > 1
              ? std::sqrt(std::max(0.0, (m.sumsq_ms - m.sum_ms * m.sum_ms /
                                                          static_cast<double>(m.samples)) /
                                            static_cast<double>(m.samples - 1)))
              : 0.0;
    }
  }

  double ms(const std::string& name) const {
    auto it = runs_.find(name);
    return it == runs_.end() ? 0.0 : it->second.mean_ms;
  }

  const std::map<std::string, Measurement>& runs() const { return runs_; }

private:
  std::map<std::string, Measurement> runs_;
};

inline int64_t scale_factor() {
  if (const char* e = std::getenv("NPAD_SCALE")) {
    const int64_t v = std::atoll(e);
    if (v > 0) return v;
  }
  return 1;
}

// Runs all registered benchmarks and returns the collected timings. A
// caller-provided --benchmark_repetitions always wins; otherwise every
// benchmark runs `default_repetitions` repetitions: that is what makes the
// reported stddev real (sample stddev across repetition means) and floors
// the reported iteration count, so slow entries stop showing up as
// unrepeatable "n: 1" points in the BENCH JSON trajectory.
inline Collector run_benchmarks(int argc, char** argv, int default_repetitions = 3) {
  std::vector<char*> args(argv, argv + argc);
  bool has_reps = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_repetitions", 0) == 0) has_reps = true;
  static std::string reps_flag;
  if (!has_reps && default_repetitions > 0) {
    reps_flag = "--benchmark_repetitions=" + std::to_string(default_repetitions);
    args.push_back(reps_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  Collector c;
  benchmark::RunSpecifiedBenchmarks(&c);
  return c;
}

inline std::string ratio(double num, double den, int prec = 2) {
  if (den <= 0) return "-";
  return support::Table::fmt(num / den, prec) + "x";
}

// Writes BENCH_<name>.json next to the human-readable table so the perf
// trajectory is machine-trackable across PRs: per-benchmark mean/stddev/
// iteration counts plus any runtime counters (e.g. rt::InterpStats::counters).
// Buffer-pool live-footprint counters are always included, so a leak
// regression (outstanding buffers surviving a run) shows up in the
// trajectory, not just in the fault-injection tests.
inline void write_bench_json(const std::string& name,
                             const std::map<std::string, Measurement>& rows,
                             std::map<std::string, uint64_t> counters = {}) {
  const rt::BufferPool::Counters pc = rt::BufferPool::global().stats();
  counters["pool_outstanding_bytes"] = pc.outstanding_bytes;
  counters["pool_outstanding_buffers"] = pc.outstanding_buffers;
  counters["pool_retained_bytes"] = pc.retained_bytes;
  auto esc = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::ofstream os("BENCH_" + name + ".json");
  os << "{\n  \"benchmark\": \"" << esc(name) << "\",\n";
  os << "  \"scale\": " << scale_factor() << ",\n";
  os << "  \"results\": [";
  bool first = true;
  for (const auto& [bname, m] : rows) {
    os << (first ? "" : ",") << "\n    {\"name\": \"" << esc(bname) << "\", \"n\": "
       << m.iterations << ", \"mean_ms\": " << m.mean_ms << ", \"stddev\": " << m.stddev_ms
       << "}";
    first = false;
  }
  os << "\n  ],\n  \"counters\": {";
  first = true;
  for (const auto& [cname, v] : counters) {
    os << (first ? "" : ",") << "\n    \"" << esc(cname) << "\": " << v;
    first = false;
  }
  os << "\n  }\n}\n";
}

inline void write_bench_json(const std::string& name, const Collector& col,
                             std::map<std::string, uint64_t> counters = {}) {
  write_bench_json(name, col.runs(), std::move(counters));
}

} // namespace npad::bench
