// Ablation D: kernel-compiled reductions and map→reduce fusion (redomap).
//
// Workload 1 is the dominant pattern of the GMM/LSTM/ADBench tables and of
// every vjp adjoint that contracts a gradient: reduce(+, map(f, xs)). It is
// run over the full {general, kernel} x {unfused, fused} x {W=1, W=8} grid:
// "general" disables the kernel machine (the pre-PR runtime: per-element
// apply() through the interpreter for the map, then a fold), "fused" runs
// the redomap form produced by opt::fuse_maps (the intermediate array never
// exists), and W is the kernel lane width. general x W rows double as a
// sanity check that the lane knob only affects the kernel machine.
//
// Workload 2 is a log-sum-exp reduction — an associative multi-instruction
// fold body that is *not* one of the four recognized binops, so before this
// PR it always ran per-element apply() through the general interpreter.

#include "common.hpp"

#include <functional>

#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

using namespace npad;
using namespace npad::ir;

namespace {

// sum(map (\x -> x*x*0.5 + x*0.25) xs): the redomap acceptance workload.
Prog redomap_prog() {
  ProgBuilder pb("redomap");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          Var sq = c.mul(p[0], p[0]);
                          Var h = c.mul(sq, cf64(0.5));
                          return std::vector<Atom>{Atom(c.add(h, Atom(c.mul(p[0], cf64(0.25)))))};
                        }),
                  {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {ys});
  return pb.finish({Atom(s)});
}

// reduce with a log-sum-exp fold body (associative, kernelizable, not a
// recognized binop).
Prog lse_prog() {
  ProgBuilder pb("lse");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr op = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var m = c.max(p[0], p[1]);
    Var ea = c.exp(Atom(c.sub(p[0], m)));
    Var eb = c.exp(Atom(c.sub(p[1], m)));
    return std::vector<Atom>{Atom(c.add(m, Atom(c.log(Atom(c.add(ea, eb))))))};
  });
  Var r = b.reduce1(std::move(op), cf64(-1e300), {xs});
  return pb.finish({Atom(r)});
}

} // namespace

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  const int64_t n = (int64_t{1} << 20) * S;  // 1M at scale 1 (the CI target)
  support::Rng rng(47);

  Prog p = redomap_prog();
  ir::typecheck(p);
  opt::PipelineStats fstats;
  Prog pf = opt::fuse_maps(p, &fstats.fuse);
  ir::typecheck(pf);
  Prog lse = lse_prog();
  ir::typecheck(lse);

  std::vector<rt::Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};

  rt::Interp gen1({.parallel = true, .use_kernels = false, .kernel_lanes = 1});
  rt::Interp gen8({.parallel = true, .use_kernels = false, .kernel_lanes = 8});
  rt::Interp ker1({.parallel = true, .use_kernels = true, .kernel_lanes = 1});
  rt::Interp ker8({.parallel = true, .use_kernels = true, .kernel_lanes = 8});

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  };
  reg("redomap/general-unfused-w1", [&] { benchmark::DoNotOptimize(gen1.run(p, args)); });
  reg("redomap/general-unfused-w8", [&] { benchmark::DoNotOptimize(gen8.run(p, args)); });
  reg("redomap/general-fused-w1", [&] { benchmark::DoNotOptimize(gen1.run(pf, args)); });
  reg("redomap/general-fused-w8", [&] { benchmark::DoNotOptimize(gen8.run(pf, args)); });
  reg("redomap/kernel-unfused-w1", [&] { benchmark::DoNotOptimize(ker1.run(p, args)); });
  reg("redomap/kernel-unfused-w8", [&] { benchmark::DoNotOptimize(ker8.run(p, args)); });
  reg("redomap/kernel-fused-w1", [&] { benchmark::DoNotOptimize(ker1.run(pf, args)); });
  reg("redomap/kernel-fused-w8", [&] { benchmark::DoNotOptimize(ker8.run(pf, args)); });
  reg("lse/general", [&] { benchmark::DoNotOptimize(gen8.run(lse, args)); });
  reg("lse/kernel-w1", [&] { benchmark::DoNotOptimize(ker1.run(lse, args)); });
  reg("lse/kernel-w8", [&] { benchmark::DoNotOptimize(ker8.run(lse, args)); });

  auto col = bench::run_benchmarks(argc, argv);

  const double base = col.ms("redomap/general-unfused-w1");
  support::Table t({"Workload", "Time (ms)", "vs general unfused", ""});
  auto row = [&](const char* label, const char* key, const char* note) {
    t.add_row({label, support::Table::fmt(col.ms(key)), bench::ratio(base, col.ms(key)), note});
  };
  row("sum-of-map, general, unfused, W=1", "redomap/general-unfused-w1", "pre-PR runtime");
  row("sum-of-map, general, unfused, W=8", "redomap/general-unfused-w8", "lane knob inert");
  row("sum-of-map, general, fused, W=1", "redomap/general-fused-w1", "redomap, interpreted");
  row("sum-of-map, general, fused, W=8", "redomap/general-fused-w8", "");
  row("sum-of-map, kernel, unfused, W=1", "redomap/kernel-unfused-w1", "map kernel + hand fold");
  row("sum-of-map, kernel, unfused, W=8", "redomap/kernel-unfused-w8", "");
  row("sum-of-map, kernel, fused, W=1", "redomap/kernel-fused-w1", "one pass, scalar VM");
  row("sum-of-map, kernel, fused, W=8", "redomap/kernel-fused-w8", "full new stack");
  row("log-sum-exp reduce, general", "lse/general", "per-element apply()");
  row("log-sum-exp reduce, kernel W=1", "lse/kernel-w1", "");
  row("log-sum-exp reduce, kernel W=8", "lse/kernel-w8", "lane partials");
  std::cout << "\nAblation D: kernel-compiled reductions + redomap fusion ("
            << fstats.fuse.fused_redomaps << " map fused into the reduce)\n";
  t.print();

  // Acceptance signals in the JSON: fused_reduces/kernel_reduces > 0 on the
  // fused-kernel interpreter, zero pooled launch buffers for the fused
  // redomap (the intermediate array never exists), and the fused-kernel W=8
  // vs unfused-general ratio.
  bench::write_bench_json("ablation_redomap", col, ker8.stats().counters());
  const double fused_w8 = col.ms("redomap/kernel-fused-w8");
  if (base > 0 && fused_w8 > 0) {
    std::cout << "\nfused-kernel W=8 speedup over unfused general: "
              << bench::ratio(base, fused_w8) << "\n";
  }
  return 0;
}
