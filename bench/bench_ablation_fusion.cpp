// Ablation C: map fusion + multi-lane kernel execution + pooled buffers.
//
// A 3-map element-wise chain (the paper's fused-code-generation setting: a
// pipeline of cheap per-element ops whose cost is intermediate-array
// traffic) is run four ways: {unfused, fused} x {W=1 scalar, W=8 batched}.
// Unfused W=1 is the pre-PR runtime; fused W=8 is the full new stack —
// one map, one pass over memory, batched dispatch, pool-recycled launch
// buffers. A second workload differentiates the chain and fuses the
// vjp-emitted adjoint map chain through the standard pipeline.

#include "common.hpp"

#include <functional>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

using namespace npad;
using namespace npad::ir;

namespace {

LambdaPtr affine(ir::Builder& b, double m, double a) {
  return b.lam({f64()}, [&](Builder& c, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(c.add(Atom(c.mul(p[0], cf64(m))), cf64(a)))};
  });
}

// sum(map f3 (map f2 (map f1 xs))): three cheap element-wise maps whose
// unfused execution materializes two full intermediates.
Prog chain_prog() {
  ProgBuilder pb("chain3");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var t1 = b.map1(affine(b, 1.0001, 0.5), {xs});
  Var t2 = b.map1(affine(b, 0.9990, -0.25), {t1});
  Var t3 = b.map1(affine(b, 1.0002, 0.125), {t2});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {t3});
  return pb.finish({Atom(s)});
}

} // namespace

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  const int64_t n = (int64_t{1} << 20) * S;
  support::Rng rng(31);

  Prog p = chain_prog();
  ir::typecheck(p);
  opt::PipelineStats fstats;
  Prog pf = opt::fuse_maps(p, &fstats.fuse);
  ir::typecheck(pf);

  Prog g = ad::vjp(p);
  Prog gf = opt::optimize(g, {.fuse_maps = true});
  Prog gu = opt::optimize(g, {.fuse_maps = false});

  std::vector<rt::Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  std::vector<rt::Value> gargs = args;
  gargs.emplace_back(1.0);

  rt::Interp w1({.parallel = true, .use_kernels = true, .kernel_lanes = 1});
  rt::Interp w8({.parallel = true, .use_kernels = true, .kernel_lanes = 8});

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  };
  reg("chain/unfused-w1", [&] { benchmark::DoNotOptimize(w1.run(p, args)); });
  reg("chain/unfused-w8", [&] { benchmark::DoNotOptimize(w8.run(p, args)); });
  reg("chain/fused-w1", [&] { benchmark::DoNotOptimize(w1.run(pf, args)); });
  reg("chain/fused-w8", [&] { benchmark::DoNotOptimize(w8.run(pf, args)); });
  reg("grad/unfused-w8", [&] { benchmark::DoNotOptimize(w8.run(gu, gargs)); });
  reg("grad/fused-w8", [&] { benchmark::DoNotOptimize(w8.run(gf, gargs)); });

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Workload", "Time (ms)", "vs unfused W=1", ""});
  const double base = col.ms("chain/unfused-w1");
  t.add_row({"3-map chain, unfused, W=1", support::Table::fmt(base), "1.00x", "baseline"});
  t.add_row({"3-map chain, unfused, W=8", support::Table::fmt(col.ms("chain/unfused-w8")),
             bench::ratio(base, col.ms("chain/unfused-w8")), "batched only"});
  t.add_row({"3-map chain, fused, W=1", support::Table::fmt(col.ms("chain/fused-w1")),
             bench::ratio(base, col.ms("chain/fused-w1")), "fusion only"});
  t.add_row({"3-map chain, fused, W=8", support::Table::fmt(col.ms("chain/fused-w8")),
             bench::ratio(base, col.ms("chain/fused-w8")), "fusion + batching"});
  t.add_row({"vjp chain, unfused, W=8", support::Table::fmt(col.ms("grad/unfused-w8")),
             "-", ""});
  t.add_row({"vjp chain, fused, W=8", support::Table::fmt(col.ms("grad/fused-w8")),
             bench::ratio(col.ms("grad/unfused-w8"), col.ms("grad/fused-w8")),
             "vs unfused vjp"});
  std::cout << "\nAblation C: map fusion, lane width and the buffer pool ("
            << fstats.fuse.fused_maps << " maps fused out of the primal chain)\n";
  t.print();

  // The fused+batched interpreter's counters carry the acceptance signals:
  // fused_maps > 0 (annotated launches) and pool_hits > 0 (recycled buffers).
  bench::write_bench_json("ablation_fusion", col, w8.stats().counters());
  return 0;
}
