// Closed-loop load generator for the gradient-serving front-end.
//
// Default mode stands up an in-process server (Batcher + HttpServer on an
// ephemeral port), drives it with 1, 8 and 64 concurrent closed-loop HTTP
// clients for NPAD_SERVE_BENCH_MS per level (default 1000), and reports
// p50/p99/mean request latency and requests/sec — then writes
// BENCH_serving.json with the latency rows plus the serve + interpreter
// counters (batch sizes, stacked launches, per-request launch counts).
//
// The interesting number is the 64-vs-1-client throughput ratio: a lone
// closed-loop client pays the full batching window on every request, while
// 64 clients fill max_batch-sized groups that execute as ONE stacked launch
// each — the latency-for-throughput trade the batcher exists to make.
//
// Aux modes for the CI smoke:
//   bench_serving --ping host:port      exit 0 iff GET /healthz answers ok
//   bench_serving --connect host:port   drive an EXTERNAL server (no JSON)
//
// Not a google-benchmark binary: a closed-loop multi-client driver measures
// its own wall-clock percentiles; it only shares common.hpp's JSON writer.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "serve/batcher.hpp"
#include "serve/http.hpp"
#include "serve/registry.hpp"
#include "support/error.hpp"

namespace {

using namespace npad;
using npad::bench::Measurement;

using Clock = std::chrono::steady_clock;

int64_t bench_ms() {
  if (const char* e = std::getenv("NPAD_SERVE_BENCH_MS")) {
    const int64_t v = std::atoll(e);
    if (v > 0) return v;
  }
  return 1000;
}

// Small gmm request: the batching economics (window amortization), not the
// objective's FLOPs, are what this bench measures.
std::string request_body(uint64_t seed) {
  // ~3:1 objective:jacobian mix.
  const char* mode = (seed % 4 == 3) ? "jacobian" : "objective";
  return "{\"program\":\"gmm\",\"mode\":\"" + std::string(mode) +
         "\",\"seed\":" + std::to_string(seed) +
         ",\"size\":{\"n\":16,\"d\":2,\"k\":3},\"return\":\"summary\"}";
}

struct LoadResult {
  std::vector<double> latencies_ms;  // sorted
  uint64_t requests = 0;
  uint64_t errors = 0;
  double elapsed_s = 0.0;
  double req_per_s = 0.0;
};

// `clients` closed-loop threads, each with its own keep-alive connection,
// hammering POST /v1/run for `duration_ms`.
LoadResult run_load(const std::string& host, int port, int clients, int64_t duration_ms) {
  std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
  std::vector<uint64_t> errs(static_cast<size_t>(clients), 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::HttpClient cli(host, port);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        const auto deadline = Clock::now() + std::chrono::milliseconds(duration_ms);
        uint64_t seed = static_cast<uint64_t>(c) * 1000003;
        std::string resp;
        while (Clock::now() < deadline) {
          const std::string body = request_body(seed++);
          const auto t0 = Clock::now();
          const int status = cli.post("/v1/run", body, &resp);
          const auto t1 = Clock::now();
          lat[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
          if (status != 200 || resp.find("\"ok\":true") == std::string::npos) {
            ++errs[static_cast<size_t>(c)];
          }
        }
      } catch (const npad::Error& e) {
        std::fprintf(stderr, "client %d: %s\n", c, e.what());
        ++errs[static_cast<size_t>(c)];
      }
    });
  }
  const auto t_start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const auto t_end = Clock::now();

  LoadResult r;
  for (int c = 0; c < clients; ++c) {
    r.latencies_ms.insert(r.latencies_ms.end(), lat[static_cast<size_t>(c)].begin(),
                          lat[static_cast<size_t>(c)].end());
    r.errors += errs[static_cast<size_t>(c)];
  }
  std::sort(r.latencies_ms.begin(), r.latencies_ms.end());
  r.requests = r.latencies_ms.size();
  r.elapsed_s = std::chrono::duration<double>(t_end - t_start).count();
  r.req_per_s = r.elapsed_s > 0 ? static_cast<double>(r.requests) / r.elapsed_s : 0.0;
  return r;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t i = std::min(sorted.size() - 1,
                            static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[i];
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

// Sample stddev across per-request latencies — the real spread of the
// measured distribution, not a repetition artifact.
double sample_stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

Measurement row(double value_ms, uint64_t n, double stddev_ms = 0.0) {
  Measurement m;
  m.mean_ms = value_ms;
  m.stddev_ms = stddev_ms;
  m.iterations = static_cast<int64_t>(n);
  return m;
}

// Returns the per-level req/s keyed by client count; fills rows/counters.
std::map<int, double> drive(const std::string& host, int port,
                            std::map<std::string, Measurement>* rows,
                            std::map<std::string, uint64_t>* counters) {
  const int64_t dur = bench_ms();
  std::map<int, double> rates;
  for (int clients : {1, 8, 64}) {
    const LoadResult r = run_load(host, port, clients, dur);
    if (r.requests == 0 || r.errors > 0) {
      std::fprintf(stderr, "c%d: %llu requests, %llu errors — serving bench failed\n",
                   clients, static_cast<unsigned long long>(r.requests),
                   static_cast<unsigned long long>(r.errors));
      std::exit(1);
    }
    const double p50 = percentile(r.latencies_ms, 0.50);
    const double p99 = percentile(r.latencies_ms, 0.99);
    std::printf("c%-3d %8llu req in %.2fs  %9.1f req/s  p50 %7.3f ms  p99 %7.3f ms  mean %7.3f ms\n",
                clients, static_cast<unsigned long long>(r.requests), r.elapsed_s,
                r.req_per_s, p50, p99, mean(r.latencies_ms));
    rates[clients] = r.req_per_s;
    const std::string pre = "serve_c" + std::to_string(clients);
    if (rows) {
      const double sd = sample_stddev(r.latencies_ms);
      (*rows)[pre + "/latency_p50_ms"] = row(p50, r.requests, sd);
      (*rows)[pre + "/latency_p99_ms"] = row(p99, r.requests, sd);
      (*rows)[pre + "/latency_mean_ms"] = row(mean(r.latencies_ms), r.requests, sd);
    }
    if (counters) {
      (*counters)[pre + "_requests"] = r.requests;
      (*counters)[pre + "_req_per_s"] = static_cast<uint64_t>(r.req_per_s);
    }
  }
  return rates;
}

bool split_hostport(const char* arg, std::string* host, int* port) {
  const char* colon = std::strrchr(arg, ':');
  if (!colon) return false;
  *host = std::string(arg, colon);
  *port = std::atoi(colon + 1);
  return *port > 0;
}

} // namespace

int main(int argc, char** argv) {
  std::string host;
  int port = 0;

  if (argc >= 3 && std::string(argv[1]) == "--ping") {
    if (!split_hostport(argv[2], &host, &port)) return 2;
    try {
      npad::serve::HttpClient cli(host, port);
      std::string body;
      return (cli.get("/healthz", &body) == 200 &&
              body.find("\"ok\":true") != std::string::npos)
                 ? 0
                 : 1;
    } catch (const npad::Error&) {
      return 1;
    }
  }

  if (argc >= 3 && std::string(argv[1]) == "--connect") {
    // External-server mode (CI smoke against a real npad_serve process):
    // drive the load levels, print the table, no JSON (the counters live in
    // the server process).
    if (!split_hostport(argv[2], &host, &port)) return 2;
    const auto rates = drive(host, port, nullptr, nullptr);
    std::printf("speedup c64 vs c1: %.2fx\n", rates.at(64) / rates.at(1));
    return 0;
  }

  // In-process mode: ephemeral server, load levels, BENCH_serving.json.
  npad::serve::register_builtin_programs();
  npad::serve::BatcherOptions bo;  // defaults: max_batch=16, window_us=1000
  npad::serve::Batcher batcher(bo);
  npad::serve::HttpOptions ho;
  ho.port = 0;
  npad::serve::HttpServer server(batcher, ho);
  server.start();
  std::printf("in-process server on 127.0.0.1:%d (max_batch=%d window_us=%lld)\n",
              server.port(), bo.max_batch, static_cast<long long>(bo.window_us));

  // Warm the program/kernel/plan/batched-prog caches before measuring.
  {
    npad::serve::HttpClient warm("127.0.0.1", server.port());
    std::string resp;
    for (uint64_t s = 0; s < 8; ++s) warm.post("/v1/run", request_body(s), &resp);
  }

  std::map<std::string, Measurement> rows;
  std::map<std::string, uint64_t> counters;
  const auto rates = drive("127.0.0.1", server.port(), &rows, &counters);
  const double speedup = rates.at(64) / rates.at(1);
  std::printf("speedup c64 vs c1: %.2fx (acceptance floor: 3x)\n", speedup);
  counters["serving_speedup_c64_vs_c1_x100"] = static_cast<uint64_t>(speedup * 100.0);

  for (const auto& [k, v] : batcher.stats().counters()) counters[k] = v;
  for (const auto& [k, v] : batcher.interp().stats().counters()) counters[k] = v;
  npad::bench::write_bench_json("serving", rows, counters);

  server.stop();
  batcher.stop();
  return 0;
}
