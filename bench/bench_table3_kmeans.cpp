// Table 3 (Section 7.4): dense k-means — manual (histogram-based) vs npad AD
// (gradient via vjp, Hessian-vector products via jvp-of-vjp) vs the eager
// autograd baseline, on two workload shapes (scaled from the paper's
// (5, 494019, 35) and (1024, 10000, 256)).

#include "common.hpp"

#include <functional>

#include "apps/kmeans.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(11);
  rt::Interp interp;
  // All AD happens before optimization (jvp-of-vjp refuses fused/flattened
  // forms); then each measured program runs the standard pipeline.
  ir::Prog cost_p = apps::kmeans_ir_cost();
  ir::typecheck(cost_p);
  ir::Prog grad_p = ad::vjp(cost_p);
  ir::Prog hess_p = ad::jvp(grad_p);
  ir::typecheck(hess_p);
  cost_p = opt::optimize(cost_p);
  grad_p = opt::optimize(grad_p);
  hess_p = opt::optimize(hess_p);
  ir::typecheck(cost_p);
  ir::typecheck(grad_p);
  ir::typecheck(hess_p);

  struct Workload {
    const char* name;
    int64_t k, n, d;
  };
  const Workload wls[] = {{"(5, 494019, 35) scaled", 5, 4096 * S, 16},
                          {"(1024, 10000, 256) scaled", 64, 512 * S, 32}};

  std::vector<apps::KmeansData> data;
  for (const auto& w : wls) data.push_back(apps::kmeans_gen(rng, w.n, w.d, w.k));

  for (int i = 0; i < 2; ++i) {
    const auto& dt = data[static_cast<size_t>(i)];
    auto args = std::vector<rt::Value>{rt::make_f64_array(dt.centroids, {dt.k, dt.d}),
                                       rt::make_f64_array(dt.points, {dt.n, dt.d})};
    auto gargs = args;
    gargs.emplace_back(1.0);
    // One Hessian-vector probe direction (as in Newton's method the Hessian
    // diagonal costs k*d of these; we report per-probe time).
    auto hargs = gargs;
    std::vector<double> dir(static_cast<size_t>(dt.k * dt.d), 0.0);
    dir[0] = 1.0;
    hargs.push_back(rt::make_f64_array(dir, {dt.k, dt.d}));
    hargs.push_back(rt::make_f64_array(
        std::vector<double>(static_cast<size_t>(dt.n * dt.d), 0.0), {dt.n, dt.d}));
    hargs.emplace_back(0.0);
    const std::string p = "w" + std::to_string(i);
    auto reg = [&](const std::string& name, std::function<void()> fn) {
      benchmark::RegisterBenchmark((p + "/" + name).c_str(), [fn](benchmark::State& st) {
        for (auto _ : st) fn();
      })->Unit(benchmark::kMillisecond)->MinTime(0.05);
    };
    reg("manual", [&interp, dt] { benchmark::DoNotOptimize(apps::kmeans_manual(dt)); });
    reg("ad_grad", [&interp, &grad_p, gargs] {
      benchmark::DoNotOptimize(interp.run(grad_p, gargs));
    });
    reg("ad_hvp", [&interp, &hess_p, hargs] {
      benchmark::DoNotOptimize(interp.run(hess_p, hargs));
    });
    reg("eager", [dt] { benchmark::DoNotOptimize(apps::kmeans_eager(dt)); });
  }

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Workload", "Manual (ms)", "npad AD grad (ms)", "npad AD HVP (ms)",
                    "Eager AD (ms)", "Paper (manual/AD/PyT, A100)"});
  const char* paper[] = {"9.3 / 36.6 / 44.9 ms", "9.9 / 9.6 / 11.2 ms"};
  for (int i = 0; i < 2; ++i) {
    const std::string p = "w" + std::to_string(i);
    t.add_row({wls[i].name, support::Table::fmt(col.ms(p + "/manual")),
               support::Table::fmt(col.ms(p + "/ad_grad")),
               support::Table::fmt(col.ms(p + "/ad_hvp")),
               support::Table::fmt(col.ms(p + "/eager")), paper[i]});
  }
  std::cout << "\nTable 3: dense k-means (gradient + Hessian probes)\n";
  t.print();

  bench::write_bench_json("table3_kmeans", col, interp.stats().counters());
  return 0;
}
