// Table 6 (Section 7.7): LSTM on two NLP-shaped hyperparameter sets
// (scaled): the eager autograd baseline (PyTorch stand-in), npad AD, and the
// fused manual implementation (cuDNN stand-in), with within-system AD
// overheads.

#include "common.hpp"

#include <functional>

#include "apps/lstm.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(19);
  rt::Interp interp;
  // Differentiate first, then the standard pipeline (fusion + flattening)
  // over both programs — the per-gate row maps are nested-parallel.
  ir::Prog obj_p = apps::lstm_ir_objective();
  ir::typecheck(obj_p);
  ir::Prog grad_p = ad::vjp(obj_p);
  obj_p = opt::optimize(obj_p);
  grad_p = opt::optimize(grad_p);
  ir::typecheck(obj_p);
  ir::typecheck(grad_p);

  struct Shape {
    const char* name;
    int64_t bs, n, d, h;
  };
  const Shape shapes[] = {{"D0 (1024,20,300,192)", 16, 10 * S, 24, 16},
                          {"D1 (1024,300,80,256)", 16, 24 * S, 12, 20}};

  std::vector<apps::LstmData> data;
  for (const auto& s : shapes) data.push_back(apps::lstm_gen(rng, s.bs, s.n, s.d, s.h));

  for (int i = 0; i < 2; ++i) {
    const auto& L = data[static_cast<size_t>(i)];
    auto args = apps::lstm_ir_args(L);
    auto gargs = args;
    gargs.emplace_back(1.0);
    const std::string p = "d" + std::to_string(i);
    auto reg = [&](const std::string& name, std::function<void()> fn) {
      benchmark::RegisterBenchmark((p + "/" + name).c_str(), [fn](benchmark::State& st) {
        for (auto _ : st) fn();
      })->Unit(benchmark::kMillisecond)->MinTime(0.05);
    };
    reg("npad_obj", [&interp, &obj_p, args] { benchmark::DoNotOptimize(interp.run(obj_p, args)); });
    reg("npad_jac", [&interp, &grad_p, gargs] {
      benchmark::DoNotOptimize(interp.run(grad_p, gargs));
    });
    reg("eager_obj", [L] { benchmark::DoNotOptimize(apps::lstm_eager(L, false)); });
    reg("eager_jac", [L] { benchmark::DoNotOptimize(apps::lstm_eager(L, true)); });
    reg("manual_obj", [L] { benchmark::DoNotOptimize(apps::lstm_manual_objective_only(L)); });
    reg("manual_jac", [L] { benchmark::DoNotOptimize(apps::lstm_manual(L)); });
  }

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Shape", "Eager Jacob. (ms)", "npad speedup", "manual speedup",
                    "Eager ovh", "npad ovh", "manual ovh", "Paper A100 (Fut/cuDNN spd)"});
  const char* paper[] = {"3.1x / 14.0x", "3.0x / 25.5x"};
  for (int i = 0; i < 2; ++i) {
    const std::string p = "d" + std::to_string(i);
    t.add_row({shapes[i].name, support::Table::fmt(col.ms(p + "/eager_jac")),
               bench::ratio(col.ms(p + "/eager_jac"), col.ms(p + "/npad_jac")),
               bench::ratio(col.ms(p + "/eager_jac"), col.ms(p + "/manual_jac")),
               bench::ratio(col.ms(p + "/eager_jac"), col.ms(p + "/eager_obj")),
               bench::ratio(col.ms(p + "/npad_jac"), col.ms(p + "/npad_obj")),
               bench::ratio(col.ms(p + "/manual_jac"), col.ms(p + "/manual_obj")), paper[i]});
  }
  std::cout << "\nTable 6: LSTM gradients (NLP shapes, scaled)\n";
  t.print();

  bench::write_bench_json("table6_lstm", col, interp.stats().counters());
  return 0;
}
