// Table 2 (Section 7.3): RSBench / XSBench — primal runtimes and the
// overhead of one forward+return sweep of the reverse-differentiated program
// relative to the undifferentiated one. "Original" is the plain C++ port,
// "Futhark" is the npad IR version, "Enzyme" is the tape baseline.

#include "common.hpp"

#include <functional>

#include "apps/mc_transport.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(7);
  rt::Interp interp;

  auto xs = apps::xs_gen(rng, 8, 128, 256 * S);
  ir::Prog xs_p = apps::xs_ir_objective();
  ir::typecheck(xs_p);
  ir::Prog xs_g = ad::vjp(xs_p);
  auto xs_args = apps::xs_ir_args(xs);
  auto xs_gargs = xs_args;
  xs_gargs.emplace_back(1.0);

  auto rs = apps::rs_gen(rng, 8, 24, 256 * S);
  ir::Prog rs_p = apps::rs_ir_objective();
  ir::Prog rs_g = ad::vjp(rs_p);
  auto rs_args = apps::rs_ir_args(rs);
  auto rs_gargs = rs_args;
  rs_gargs.emplace_back(1.0);

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.05);
  };
  reg("xs/original", [&] { benchmark::DoNotOptimize(apps::xs_primal(xs)); });
  reg("xs/npad_primal", [&] { benchmark::DoNotOptimize(interp.run(xs_p, xs_args)); });
  reg("xs/npad_grad", [&] { benchmark::DoNotOptimize(interp.run(xs_g, xs_gargs)); });
  reg("xs/tape_grad", [&] { benchmark::DoNotOptimize(apps::xs_tape_gradient(xs, nullptr)); });
  reg("rs/original", [&] { benchmark::DoNotOptimize(apps::rs_primal(rs)); });
  reg("rs/npad_primal", [&] { benchmark::DoNotOptimize(interp.run(rs_p, rs_args)); });
  reg("rs/npad_grad", [&] { benchmark::DoNotOptimize(interp.run(rs_g, rs_gargs)); });
  reg("rs/tape_grad", [&] { benchmark::DoNotOptimize(apps::rs_tape_gradient(rs)); });

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Benchmark", "Original (ms)", "npad primal (ms)", "AD overhead npad",
                    "AD overhead tape", "Paper Fut. / Enzyme"});
  t.add_row({"RSBench", support::Table::fmt(col.ms("rs/original")),
             support::Table::fmt(col.ms("rs/npad_primal")),
             bench::ratio(col.ms("rs/npad_grad"), col.ms("rs/npad_primal"), 1),
             bench::ratio(col.ms("rs/tape_grad"), col.ms("rs/original"), 1), "3.6x / 4.2x"});
  t.add_row({"XSBench", support::Table::fmt(col.ms("xs/original")),
             support::Table::fmt(col.ms("xs/npad_primal")),
             bench::ratio(col.ms("xs/npad_grad"), col.ms("xs/npad_primal"), 1),
             bench::ratio(col.ms("xs/tape_grad"), col.ms("xs/original"), 1), "2.6x / 3.2x"});
  std::cout << "\nTable 2: RSBench/XSBench primal runtimes and reverse-AD overheads\n";
  t.print();

  bench::write_bench_json("table2_enzyme", col, interp.stats().counters());
  return 0;
}
