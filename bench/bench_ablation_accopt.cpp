// Ablation A (Section 6.1): accumulator specialization. The vjp of a gather
// (reads become accumulations) produces the withacc+upd_acc pattern; Rule H
// rewrites it to reduce_by_index and Rule R to a map-reduce. We compare the
// differentiated program with and without opt::optimize_accumulators, and —
// for the runtime's own accumulator optimization — the same contended
// histogram executed with privatized per-worker accumulator buffers vs plain
// atomic RMW updates.

#include "common.hpp"

#include <functional>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/accopt.hpp"
#include "opt/simplify.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

using namespace npad;
using namespace npad::ir;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  const int64_t n = 200000 * S, m = 512;
  support::Rng rng(23);
  rt::Interp interp;
  // Runtime accumulator ablation: same program, privatized vs atomic updates.
  rt::InterpOptions atomic_opts;
  atomic_opts.privatize_accs = false;
  rt::Interp atomic_interp(atomic_opts);
  rt::InterpOptions priv_opts;
  priv_opts.privatize_accs = true;
  priv_opts.privatize_min_iters = 1024;
  rt::Interp priv_interp(priv_opts);

  // f(xs, is) = sum_j xs[is_j]^2 — the canonical read-becomes-accumulation.
  ProgBuilder pb("gather_sq");
  Var xs = pb.param("xs", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({i64()},
                       [&](Builder& c, const std::vector<Var>& p) {
                         Var v = c.index(xs, {Atom(p[0])});
                         return std::vector<Atom>{Atom(c.mul(v, v))};
                       }),
                 {is});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);

  Prog grad_acc = ad::vjp(p);
  opt::AccOptStats stats;
  Prog grad_opt = opt::optimize_accumulators(grad_acc, &stats);
  typecheck(grad_opt);

  std::vector<rt::Value> gargs = {rt::make_f64_array(rng.normal_vec(static_cast<size_t>(m)), {m}),
                                  rt::make_i64_array(rng.index_vec(static_cast<size_t>(n), m), {n}),
                                  1.0};

  benchmark::RegisterBenchmark("grad/accumulators", [&](benchmark::State& st) {
    for (auto _ : st) benchmark::DoNotOptimize(interp.run(grad_acc, gargs));
  })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  benchmark::RegisterBenchmark("grad/specialized", [&](benchmark::State& st) {
    for (auto _ : st) benchmark::DoNotOptimize(interp.run(grad_opt, gargs));
  })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  benchmark::RegisterBenchmark("grad/atomic", [&](benchmark::State& st) {
    for (auto _ : st) benchmark::DoNotOptimize(atomic_interp.run(grad_acc, gargs));
  })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  benchmark::RegisterBenchmark("grad/privatized", [&](benchmark::State& st) {
    for (auto _ : st) benchmark::DoNotOptimize(priv_interp.run(grad_acc, gargs));
  })->Unit(benchmark::kMillisecond)->MinTime(0.1);

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Variant", "Gradient (ms)", "Speedup"});
  t.add_row({"withacc + atomic upd_acc", support::Table::fmt(col.ms("grad/accumulators")), "1.00x"});
  t.add_row({"rewritten to reduce_by_index (Rule H fired " + std::to_string(stats.to_histogram) +
                 "x)",
             support::Table::fmt(col.ms("grad/specialized")),
             bench::ratio(col.ms("grad/accumulators"), col.ms("grad/specialized"))});
  t.add_row({"runtime: atomic updates", support::Table::fmt(col.ms("grad/atomic")),
             bench::ratio(col.ms("grad/accumulators"), col.ms("grad/atomic"))});
  t.add_row({"runtime: privatized accumulators", support::Table::fmt(col.ms("grad/privatized")),
             bench::ratio(col.ms("grad/atomic"), col.ms("grad/privatized"))});
  std::cout << "\nAblation A: accumulator specialization (Section 6.1)\n";
  t.print();
  std::cout << "privatized_updates=" << priv_interp.stats().privatized_updates.load()
            << " atomic_updates=" << atomic_interp.stats().atomic_updates.load() << "\n";

  bench::write_bench_json("ablation_accopt", col, priv_interp.stats().counters());
  return 0;
}
