// Monte Carlo transport (XSBench / RSBench, Section 7.3) as a standalone
// tracked benchmark: npad primal and reverse-AD gradient for both lookup
// kernels, next to the plain C++ port and the tape baseline. Unlike
// bench_table2_enzyme (which prints the paper-comparison table), this binary
// exists for the cross-PR perf trajectory: its BENCH_mc_transport.json
// carries the interpreter counters — launch counts, pool traffic and the
// execution-plan counters — for a workload dominated by one large map with
// inner loops and indirect indexing, the shape the plan layer must not
// pessimize.

#include "common.hpp"

#include <functional>

#include "apps/mc_transport.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(29);
  rt::Interp interp;

  auto xs = apps::xs_gen(rng, 8, 128, 512 * S);
  ir::Prog xs_p = apps::xs_ir_objective();
  ir::typecheck(xs_p);
  ir::Prog xs_g = ad::vjp(xs_p);
  ir::typecheck(xs_g);
  auto xs_args = apps::xs_ir_args(xs);
  auto xs_gargs = xs_args;
  xs_gargs.emplace_back(1.0);

  auto rs = apps::rs_gen(rng, 8, 24, 512 * S);
  ir::Prog rs_p = apps::rs_ir_objective();
  ir::typecheck(rs_p);
  ir::Prog rs_g = ad::vjp(rs_p);
  ir::typecheck(rs_g);
  auto rs_args = apps::rs_ir_args(rs);
  auto rs_gargs = rs_args;
  rs_gargs.emplace_back(1.0);

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.05);
  };
  reg("xsbench/original", [&] { benchmark::DoNotOptimize(apps::xs_primal(xs)); });
  reg("xsbench/npad_primal", [&] { benchmark::DoNotOptimize(interp.run(xs_p, xs_args)); });
  reg("xsbench/npad_grad", [&] { benchmark::DoNotOptimize(interp.run(xs_g, xs_gargs)); });
  reg("xsbench/tape_grad", [&] { benchmark::DoNotOptimize(apps::xs_tape_gradient(xs, nullptr)); });
  reg("rsbench/original", [&] { benchmark::DoNotOptimize(apps::rs_primal(rs)); });
  reg("rsbench/npad_primal", [&] { benchmark::DoNotOptimize(interp.run(rs_p, rs_args)); });
  reg("rsbench/npad_grad", [&] { benchmark::DoNotOptimize(interp.run(rs_g, rs_gargs)); });
  reg("rsbench/tape_grad", [&] { benchmark::DoNotOptimize(apps::rs_tape_gradient(rs)); });

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Kernel", "Original (ms)", "npad primal (ms)", "npad grad (ms)",
                    "tape grad (ms)", "AD overhead npad"});
  auto row = [&](const char* name, const char* pre) {
    const std::string s(pre);
    t.add_row({name, support::Table::fmt(col.ms(s + "/original")),
               support::Table::fmt(col.ms(s + "/npad_primal")),
               support::Table::fmt(col.ms(s + "/npad_grad")),
               support::Table::fmt(col.ms(s + "/tape_grad")),
               bench::ratio(col.ms(s + "/npad_grad"), col.ms(s + "/npad_primal"), 1)});
  };
  row("XSBench", "xsbench");
  row("RSBench", "rsbench");
  std::cout << "\nMonte Carlo transport lookup kernels (tracked workload)\n";
  t.print();

  bench::write_bench_json("mc_transport", col, interp.stats().counters());
  return 0;
}
