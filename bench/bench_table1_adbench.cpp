// Table 1 (Section 7.1): ADBench sequential performance — time to compute
// the full Jacobian relative to the objective, per tool. "Futhark" is npad
// (vjp for gradient-shaped Jacobians; seed-vector jvp columns for the
// block-sparse BA/HAND Jacobians, exactly the sparsity exploitation the
// paper describes); "Tapenade" is the tape baseline (one tape reversal per
// Jacobian row, or one gradient pass when the Jacobian is a gradient);
// "Manual" is the hand-derived implementation (GMM and D-LSTM; the paper's
// BA/HAND manual implementations are not reproduced).

#include "common.hpp"

#include <functional>

#include "apps/ba.hpp"
#include "apps/gmm.hpp"
#include "apps/hand.hpp"
#include "apps/lstm.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"
#include "tape/tape.hpp"

using namespace npad;

namespace {

// Templated diagonal-GMM objective shared with the tape baseline.
template <class Real>
Real gmm_obj_t(const apps::GmmData& g, const Real* alphas, const Real* means, const Real* qs) {
  using std::exp;
  using std::log;
  using std::max;
  const int64_t n = g.n, d = g.d, k = g.k;
  Real total(0.0);
  std::vector<Real> qsum(static_cast<size_t>(k), Real(0.0));
  for (int64_t c = 0; c < k; ++c)
    for (int64_t j = 0; j < d; ++j) qsum[static_cast<size_t>(c)] = qsum[static_cast<size_t>(c)] + qs[c * d + j];
  for (int64_t i = 0; i < n; ++i) {
    Real mx(-1e300);
    std::vector<Real> inner(static_cast<size_t>(k), Real(0.0));
    for (int64_t c = 0; c < k; ++c) {
      Real sq(0.0);
      for (int64_t j = 0; j < d; ++j) {
        Real w = (Real(g.x[static_cast<size_t>(i * d + j)]) - means[c * d + j]) * exp(qs[c * d + j]);
        sq = sq + w * w;
      }
      inner[static_cast<size_t>(c)] = alphas[c] + qsum[static_cast<size_t>(c)] - 0.5 * sq;
      mx = max(mx, inner[static_cast<size_t>(c)]);
    }
    Real den(0.0);
    for (int64_t c = 0; c < k; ++c) den = den + exp(inner[static_cast<size_t>(c)] - mx);
    total = total + mx + log(den);
  }
  Real amx(-1e300);
  for (int64_t c = 0; c < k; ++c) amx = max(amx, alphas[c]);
  Real aden(0.0);
  for (int64_t c = 0; c < k; ++c) aden = aden + exp(alphas[c] - amx);
  total = total - double(n) * (amx + log(aden));
  for (int64_t c = 0; c < k; ++c)
    for (int64_t j = 0; j < d; ++j) total = total + 0.5 * exp(2.0 * qs[c * d + j]) - qs[c * d + j];
  return total;
}

// Templated LSTM objective for the tape baseline.
template <class Real>
Real lstm_obj_t(const apps::LstmData& L, const Real* wx, const Real* wh, const Real* bb) {
  using std::exp;
  using std::tanh;
  const int64_t bs = L.bs, n = L.n, d = L.d, h = L.h;
  std::vector<Real> hS(static_cast<size_t>(bs * h), Real(0.0)), cS(hS);
  Real loss(0.0);
  for (int64_t t = 0; t < n; ++t) {
    const double* xt = L.x.data() + t * bs * d;
    std::vector<Real> hn(static_cast<size_t>(bs * h), Real(0.0)), cn(hn);
    for (int64_t r = 0; r < bs; ++r) {
      for (int64_t j = 0; j < h; ++j) {
        Real pre[4];
        for (int g = 0; g < 4; ++g) {
          const int64_t row = g * h + j;
          Real s = bb[row];
          for (int64_t q = 0; q < d; ++q) s = s + wx[row * d + q] * xt[r * d + q];
          for (int64_t q = 0; q < h; ++q) s = s + wh[row * h + q] * hS[static_cast<size_t>(r * h + q)];
          pre[g] = s;
        }
        const size_t ix = static_cast<size_t>(r * h + j);
        Real ig = 1.0 / (1.0 + exp(Real(0.0) - pre[0]));
        Real fg = 1.0 / (1.0 + exp(Real(0.0) - pre[1]));
        Real og = 1.0 / (1.0 + exp(Real(0.0) - pre[2]));
        Real cgv = tanh(pre[3]);
        cn[ix] = fg * cS[ix] + ig * cgv;
        hn[ix] = og * tanh(cn[ix]);
        loss = loss + hn[ix] * hn[ix];
      }
    }
    hS = hn;
    cS = cn;
  }
  return loss;
}

} // namespace

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(42);
  rt::Interp interp;

  // ---- GMM ----
  auto gmm = apps::gmm_gen(rng, 128 * S, 8, 5);
  ir::Prog gmm_p = apps::gmm_ir_objective();
  ir::typecheck(gmm_p);
  ir::Prog gmm_g = ad::vjp(gmm_p);
  auto gmm_args = apps::gmm_ir_args(gmm);
  auto gmm_gargs = gmm_args;
  gmm_gargs.emplace_back(1.0);

  // ---- D-LSTM ----
  auto lstm = apps::lstm_gen(rng, 4, 8 * S, 10, 10);
  ir::Prog lstm_p = apps::lstm_ir_objective();
  ir::Prog lstm_g = ad::vjp(lstm_p);
  auto lstm_args = apps::lstm_ir_args(lstm);
  auto lstm_gargs = lstm_args;
  lstm_gargs.emplace_back(1.0);

  // ---- BA ----
  auto ba = apps::ba_gen(rng, 8, 32, 64 * S);
  ir::Prog ba_p = apps::ba_ir_residuals();
  ir::Prog ba_j = ad::jvp(ba_p);
  auto ba_args = apps::ba_ir_args(ba);
  auto ba_jvp_all_columns = [&] {
    // 15 seed-vector columns: 11 camera, 3 point, 1 weight.
    for (int col = 0; col < 15; ++col) {
      std::vector<double> cam_t(static_cast<size_t>(ba.n_cams * 11), 0.0);
      std::vector<double> pt_t(static_cast<size_t>(ba.n_pts * 3), 0.0);
      std::vector<double> w_t(static_cast<size_t>(ba.n_obs), 0.0);
      if (col < 11) {
        for (int64_t c = 0; c < ba.n_cams; ++c) cam_t[static_cast<size_t>(c * 11 + col)] = 1.0;
      } else if (col < 14) {
        for (int64_t p = 0; p < ba.n_pts; ++p) pt_t[static_cast<size_t>(p * 3 + col - 11)] = 1.0;
      } else {
        std::fill(w_t.begin(), w_t.end(), 1.0);
      }
      auto args = ba_args;
      args.push_back(rt::make_f64_array(cam_t, {ba.n_cams, 11}));
      args.push_back(rt::make_f64_array(pt_t, {ba.n_pts, 3}));
      args.push_back(rt::make_f64_array(w_t, {ba.n_obs}));
      args.push_back(rt::make_f64_array(
          std::vector<double>(static_cast<size_t>(ba.n_obs * 2), 0.0), {ba.n_obs, 2}));
      benchmark::DoNotOptimize(interp.run(ba_j, args));
    }
  };

  // ---- HAND ----
  auto hand = apps::hand_gen(rng, 8, 32 * S);
  ir::Prog hand_s = apps::hand_ir_residuals(false);
  ir::Prog hand_c = apps::hand_ir_residuals(true);
  ir::Prog hand_s_j = ad::jvp(hand_s);
  ir::Prog hand_c_j = ad::jvp(hand_c);
  auto hand_jvp_columns = [&](bool complicated) {
    const int64_t ncols = 3 * hand.nbones + (complicated ? 2 : 0);
    for (int64_t col = 0; col < ncols; ++col) {
      std::vector<double> th_t(static_cast<size_t>(3 * hand.nbones), 0.0);
      std::vector<double> us_t(static_cast<size_t>(2 * hand.nverts), 0.0);
      if (col < 3 * hand.nbones) {
        th_t[static_cast<size_t>(col)] = 1.0;
      } else {
        // All same-parity us entries at once (disjoint Jacobian rows).
        for (int64_t v = 0; v < hand.nverts; ++v)
          us_t[static_cast<size_t>(2 * v + (col - 3 * hand.nbones))] = 1.0;
      }
      auto args = apps::hand_ir_args(hand, complicated);
      args.push_back(rt::make_f64_array(th_t, {3 * hand.nbones}));
      if (complicated) args.push_back(rt::make_f64_array(us_t, {2 * hand.nverts}));
      args.push_back(rt::make_f64_array(
          std::vector<double>(static_cast<size_t>(hand.nverts * 3), 0.0), {hand.nverts, 3}));
      args.push_back(rt::make_f64_array(
          std::vector<double>(static_cast<size_t>(hand.nverts * 6), 0.0), {hand.nverts, 6}));
      args.push_back(rt::make_f64_array(
          std::vector<double>(static_cast<size_t>(hand.nverts * 3), 0.0), {hand.nverts, 3}));
      benchmark::DoNotOptimize(interp.run(complicated ? hand_c_j : hand_s_j, args));
    }
  };

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.05);
  };

  reg("gmm/obj", [&] { benchmark::DoNotOptimize(interp.run(gmm_p, gmm_args)); });
  reg("gmm/jac", [&] { benchmark::DoNotOptimize(interp.run(gmm_g, gmm_gargs)); });
  reg("gmm/tape_obj", [&] {
    benchmark::DoNotOptimize(gmm_obj_t<double>(gmm, gmm.alphas.data(), gmm.means.data(),
                                               gmm.qs.data()));
  });
  reg("gmm/tape_jac", [&] {
    tape::Tape::active().clear();
    std::vector<tape::Adouble> a, m, q;
    for (double v : gmm.alphas) a.emplace_back(v);
    for (double v : gmm.means) m.emplace_back(v);
    for (double v : gmm.qs) q.emplace_back(v);
    tape::Adouble y = gmm_obj_t<tape::Adouble>(gmm, a.data(), m.data(), q.data());
    y.seed(1.0);
    tape::Tape::active().reverse();
    benchmark::DoNotOptimize(a[0].adjoint());
  });
  reg("gmm/manual_obj", [&] {
    benchmark::DoNotOptimize(gmm_obj_t<double>(gmm, gmm.alphas.data(), gmm.means.data(),
                                               gmm.qs.data()));
  });
  reg("gmm/manual_jac", [&] { benchmark::DoNotOptimize(apps::gmm_manual(gmm)); });

  reg("lstm/obj", [&] { benchmark::DoNotOptimize(interp.run(lstm_p, lstm_args)); });
  reg("lstm/jac", [&] { benchmark::DoNotOptimize(interp.run(lstm_g, lstm_gargs)); });
  reg("lstm/tape_obj", [&] {
    benchmark::DoNotOptimize(lstm_obj_t<double>(lstm, lstm.wx.data(), lstm.wh.data(),
                                                lstm.b.data()));
  });
  reg("lstm/tape_jac", [&] {
    tape::Tape::active().clear();
    std::vector<tape::Adouble> wx, wh, bb;
    for (double v : lstm.wx) wx.emplace_back(v);
    for (double v : lstm.wh) wh.emplace_back(v);
    for (double v : lstm.b) bb.emplace_back(v);
    tape::Adouble y = lstm_obj_t<tape::Adouble>(lstm, wx.data(), wh.data(), bb.data());
    y.seed(1.0);
    tape::Tape::active().reverse();
    benchmark::DoNotOptimize(wx[0].adjoint());
  });
  reg("lstm/manual_obj",
      [&] { benchmark::DoNotOptimize(apps::lstm_manual_objective_only(lstm)); });
  reg("lstm/manual_jac", [&] { benchmark::DoNotOptimize(apps::lstm_manual(lstm)); });

  reg("ba/obj", [&] { benchmark::DoNotOptimize(interp.run(ba_p, ba_args)); });
  reg("ba/jac", ba_jvp_all_columns);
  reg("ba/tape_obj", [&] { benchmark::DoNotOptimize(apps::ba_primal_sum(ba)); });
  reg("ba/tape_jac", [&] { benchmark::DoNotOptimize(apps::ba_tape_jacobian(ba, nullptr)); });

  reg("hand_s/obj",
      [&] { benchmark::DoNotOptimize(interp.run(hand_s, apps::hand_ir_args(hand, false))); });
  reg("hand_s/jac", [&] { hand_jvp_columns(false); });
  reg("hand_c/obj",
      [&] { benchmark::DoNotOptimize(interp.run(hand_c, apps::hand_ir_args(hand, true))); });
  reg("hand_c/jac", [&] { hand_jvp_columns(true); });
  std::vector<double> href(static_cast<size_t>(hand.nverts * 3));
  reg("hand/tape_obj", [&] {
    apps::hand_residuals<double>(hand, hand.theta.data(), hand.us.data(), href.data());
    benchmark::DoNotOptimize(href[0]);
  });
  reg("hand_s/tape_jac", [&] { benchmark::DoNotOptimize(apps::hand_tape_jacobian(hand, false)); });
  reg("hand_c/tape_jac", [&] { benchmark::DoNotOptimize(apps::hand_tape_jacobian(hand, true)); });

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Tool", "BA", "D-LSTM", "GMM", "HAND Comp.", "HAND Simple"});
  t.add_row({"Paper: Futhark", "13.0x", "3.2x", "5.1x", "49.8x", "45.4x"});
  t.add_row({"npad (measured)", bench::ratio(col.ms("ba/jac"), col.ms("ba/obj"), 1),
             bench::ratio(col.ms("lstm/jac"), col.ms("lstm/obj"), 1),
             bench::ratio(col.ms("gmm/jac"), col.ms("gmm/obj"), 1),
             bench::ratio(col.ms("hand_c/jac"), col.ms("hand_c/obj"), 1),
             bench::ratio(col.ms("hand_s/jac"), col.ms("hand_s/obj"), 1)});
  t.add_row({"Paper: Tapenade", "10.3x", "4.5x", "5.4x", "3758.7x", "59.2x"});
  t.add_row({"tape (measured)", bench::ratio(col.ms("ba/tape_jac"), col.ms("ba/tape_obj"), 1),
             bench::ratio(col.ms("lstm/tape_jac"), col.ms("lstm/tape_obj"), 1),
             bench::ratio(col.ms("gmm/tape_jac"), col.ms("gmm/tape_obj"), 1),
             bench::ratio(col.ms("hand_c/tape_jac"), col.ms("hand/tape_obj"), 1),
             bench::ratio(col.ms("hand_s/tape_jac"), col.ms("hand/tape_obj"), 1)});
  t.add_row({"Paper: Manual", "8.6x", "6.2x", "4.6x", "4.6x", "4.4x"});
  t.add_row({"manual (measured)", "-",
             bench::ratio(col.ms("lstm/manual_jac"), col.ms("lstm/manual_obj"), 1),
             bench::ratio(col.ms("gmm/manual_jac"), col.ms("gmm/manual_obj"), 1), "-", "-"});
  std::cout << "\nTable 1: full-Jacobian time / objective time (lower is better)\n";
  t.print();

  bench::write_bench_json("table1_adbench", col, interp.stats().counters());
  return 0;
}
