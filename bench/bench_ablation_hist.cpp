// Ablation E: parallel privatized generalized histograms (reduce_by_index).
//
// One additive histogram workload — n values scattered into m bins, the
// sparse-k-means / GMM / VJP-adjoint shape — swept over the full
// {general, privatized, atomic} x {W=1, W=8} x bins {16, 1k, 1M} grid:
//
//  - "general" runs the strictly sequential general-interpreter path (the
//    pre-PR runtime for any operator outside the four recognized binops):
//    a two-statement add fold with kernels disabled, per-element apply().
//    The parallel knob is inert there — the general path never fans out.
//  - "privatized" runs the hand-rolled combinable-binop tier with per-chunk
//    private subhistograms merged in chunk order (the privatize_budget is
//    raised so even the 1M-bin row privatizes).
//  - "atomic" forces privatize_budget = 0, so every fan-out takes the
//    atomic-CAS fallback straight into the shared destination.
//
// W=1 disables the parallel runtime (the strictly sequential tier-1 loop);
// W=8 runs on an 8-worker pool (NPAD_NUM_THREADS wins if set). A log-sum-exp
// histogram rides along to measure the compiled-kernel hist tier
// (kernel_hists) that lifts reduce_by_index beyond the recognized binops.
//
// The acceptance signal in BENCH_ablation_hist.json: privatized W=8 at
// n = 1M / 1k bins vs the sequential general path at the same shape, plus
// the privatized_hist_updates / atomic_hist_updates / kernel_hists /
// general_hists / fused_hists counters.

#include <cstdlib>

#include "common.hpp"

#include <functional>

#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

using namespace npad;
using namespace npad::ir;

namespace {

// Addition written as two statements — associative, kernelizable, but not
// recognize_binop, so with kernels disabled it runs the general per-element
// apply() path (the pre-PR behavior for every non-recognized operator).
LambdaPtr slow_add_op(Builder& b) {
  return b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var t = c.add(p[0], p[1]);
    return std::vector<Atom>{Atom(c.mul(t, cf64(1.0)))};
  });
}

Prog hist_prog(bool slow_op) {
  ProgBuilder pb("hist");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var h = b.hist(slow_op ? slow_add_op(b) : b.add_op(), cf64(0.0), dest, inds, vals);
  return pb.finish({Atom(h)});
}

Prog lse_hist_prog() {
  ProgBuilder pb("lsehist");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr op = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var m = c.max(p[0], p[1]);
    Var ea = c.exp(Atom(c.sub(p[0], m)));
    Var eb = c.exp(Atom(c.sub(p[1], m)));
    return std::vector<Atom>{Atom(c.add(m, Atom(c.log(Atom(c.add(ea, eb))))))};
  });
  Var h = b.hist(std::move(op), cf64(-1e300), dest, inds, vals);
  return pb.finish({Atom(h)});
}

} // namespace

int main(int argc, char** argv) {
  // The W=8 rows need a multi-worker pool even on narrow CI/runner machines;
  // an explicitly set NPAD_NUM_THREADS wins (overwrite = 0). Must happen
  // before the pool's first lazy construction.
  setenv("NPAD_NUM_THREADS", "8", /*overwrite=*/0);

  const int64_t S = bench::scale_factor();
  const int64_t n = (int64_t{1} << 20) * S;  // 1M values at scale 1
  support::Rng rng(53);

  Prog pgen = hist_prog(/*slow_op=*/true);
  Prog pfast = hist_prog(/*slow_op=*/false);
  Prog plse = lse_hist_prog();
  ir::typecheck(pgen);
  ir::typecheck(pfast);
  ir::typecheck(plse);

  // Strategy interpreters. "general" disables kernels so the slow-add fold
  // runs per-element apply(); W only matters where the strategy can fan out.
  rt::Interp gen1({.parallel = false, .use_kernels = false});
  rt::Interp gen8({.parallel = true, .use_kernels = false});
  rt::Interp priv1({.parallel = false});
  rt::Interp priv8({.parallel = true, .privatize_budget = int64_t{1} << 33});
  rt::Interp atom1({.parallel = false, .privatize_budget = 0});
  rt::Interp atom8({.parallel = true, .privatize_budget = 0});
  rt::Interp lse1({.parallel = false});
  rt::Interp lse8({.parallel = true, .privatize_budget = int64_t{1} << 33});

  const std::vector<double> vv = rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0);
  auto reg = [&](const std::string& name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name.c_str(), [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  };

  const int64_t bin_counts[] = {16, 1000, 1000000};
  const char* bin_names[] = {"16", "1k", "1M"};
  for (size_t bi = 0; bi < 3; ++bi) {
    const int64_t m = bin_counts[bi];
    std::vector<int64_t> iv(static_cast<size_t>(n));
    for (auto& x : iv) x = rng.uniform_int(m);
    // Shared per-shape arguments; dest is copied inside eval_hist, so the
    // same argument vector can be reused across iterations and strategies.
    auto args = std::make_shared<std::vector<rt::Value>>(std::vector<rt::Value>{
        rt::make_f64_array(std::vector<double>(static_cast<size_t>(m), 0.0), {m}),
        rt::make_i64_array(iv, {n}), rt::make_f64_array(vv, {n})});
    auto row = [&](const char* strat, const char* w, rt::Interp& in, Prog& p) {
      reg(std::string("hist/") + strat + "-" + w + "-bins" + bin_names[bi],
          [&in, &p, args] { benchmark::DoNotOptimize(in.run(p, *args)); });
    };
    row("general", "w1", gen1, pgen);
    row("general", "w8", gen8, pgen);
    row("privatized", "w1", priv1, pfast);
    row("privatized", "w8", priv8, pfast);
    row("atomic", "w1", atom1, pfast);
    row("atomic", "w8", atom8, pfast);
    if (m == 1000) {
      row("lse-kernel", "w1", lse1, plse);
      row("lse-kernel", "w8", lse8, plse);
    }
  }

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Workload (n = 1M values)", "Time (ms)", "vs general W=1", ""});
  auto add_rows = [&](const char* bins) {
    const std::string base_key = std::string("hist/general-w1-bins") + bins;
    const double base = col.ms(base_key);
    auto row = [&](const char* strat, const char* w, const char* note) {
      const std::string key = std::string("hist/") + strat + "-" + w + "-bins" + bins;
      if (col.ms(key) == 0.0) return;
      t.add_row({std::string(strat) + " " + w + ", " + bins + " bins",
                 support::Table::fmt(col.ms(key)), bench::ratio(base, col.ms(key)), note});
    };
    row("general", "w1", "pre-PR path: sequential apply()");
    row("general", "w8", "parallel knob inert (sequential path)");
    row("privatized", "w1", "hand loop, strictly sequential");
    row("privatized", "w8", "per-chunk subhistograms + merge");
    row("atomic", "w1", "sequential (no fan-out at W=1)");
    row("atomic", "w8", "CAS straight into shared bins");
    row("lse-kernel", "w1", "compiled combine kernel");
    row("lse-kernel", "w8", "kernel + privatized subhistograms");
  };
  add_rows("16");
  add_rows("1k");
  add_rows("1M");
  std::cout << "\nAblation E: parallel privatized generalized histograms\n";
  t.print();

  // Acceptance: privatized W=8 vs the sequential general path at 1M/1k.
  std::map<std::string, uint64_t> counters = priv8.stats().counters();
  for (const auto& [k, v] : atom8.stats().counters()) counters["atomic8_" + k] = v;
  for (const auto& [k, v] : lse8.stats().counters()) counters["lse8_" + k] = v;
  bench::write_bench_json("ablation_hist", col, counters);
  const double base = col.ms("hist/general-w1-bins1k");
  const double priv = col.ms("hist/privatized-w8-bins1k");
  if (base > 0 && priv > 0) {
    std::cout << "\nprivatized W=8 speedup over sequential general (1k bins): "
              << bench::ratio(base, priv) << "\n";
  }
  return 0;
}
