// Table 5 (Section 7.6): GMM on the six ADBench dataset shapes (scaled).
// Reports the eager (PyTorch stand-in) Jacobian time, the npad speedup over
// it, and the within-system AD overheads (Jacobian / objective), next to the
// paper's A100 numbers.

#include "common.hpp"

#include <functional>

#include "apps/gmm.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(17);
  rt::Interp interp;
  // Differentiate first, then run the standard pipeline (fusion +
  // flattening): GMM's per-component row sums and the prior's
  // sum-of-squares rows become flattened segmented reductions.
  ir::Prog obj_p = apps::gmm_ir_objective();
  ir::typecheck(obj_p);
  ir::Prog grad_p = ad::vjp(obj_p);
  obj_p = opt::optimize(obj_p);
  grad_p = opt::optimize(grad_p);
  ir::typecheck(obj_p);
  ir::typecheck(grad_p);

  struct Shape {
    const char* name;
    int64_t n, d, k;
  };
  const Shape shapes[] = {{"D0 (1k,64,200)", 256 * S, 16, 25}, {"D1 (1k,128,200)", 256 * S, 32, 25},
                          {"D2 (10k,32,200)", 512 * S, 8, 25}, {"D3 (10k,64,25)", 512 * S, 16, 12},
                          {"D4 (10k,128,25)", 512 * S, 32, 12}, {"D5 (10k,128,200)", 512 * S, 32, 50}};

  std::vector<apps::GmmData> data;
  for (const auto& s : shapes) data.push_back(apps::gmm_gen(rng, s.n, s.d, s.k));

  for (int i = 0; i < 6; ++i) {
    const auto& g = data[static_cast<size_t>(i)];
    auto args = apps::gmm_ir_args(g);
    auto gargs = args;
    gargs.emplace_back(1.0);
    const std::string p = "d" + std::to_string(i);
    auto reg = [&](const std::string& name, std::function<void()> fn) {
      benchmark::RegisterBenchmark((p + "/" + name).c_str(), [fn](benchmark::State& st) {
        for (auto _ : st) fn();
      })->Unit(benchmark::kMillisecond)->MinTime(0.05);
    };
    reg("npad_obj", [&interp, &obj_p, args] { benchmark::DoNotOptimize(interp.run(obj_p, args)); });
    reg("npad_jac", [&interp, &grad_p, gargs] {
      benchmark::DoNotOptimize(interp.run(grad_p, gargs));
    });
    reg("eager_obj", [g] { benchmark::DoNotOptimize(apps::gmm_eager(g, false)); });
    reg("eager_jac", [g] { benchmark::DoNotOptimize(apps::gmm_eager(g, true)); });
  }

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Shape", "Eager Jacob. (ms)", "npad speedup", "Eager overhead",
                    "npad overhead", "Paper (speedup/PyT ovh/Fut ovh)"});
  const char* paper[] = {"1.85x / 2.64x / 2.34x", "2.18x / 5.28x / 2.20x",
                         "1.45x / 2.45x / 2.24x", "1.81x / 3.09x / 2.00x",
                         "1.89x / 4.04x / 2.98x", "0.87x / 2.46x / 3.18x"};
  for (int i = 0; i < 6; ++i) {
    const std::string p = "d" + std::to_string(i);
    t.add_row({shapes[i].name, support::Table::fmt(col.ms(p + "/eager_jac")),
               bench::ratio(col.ms(p + "/eager_jac"), col.ms(p + "/npad_jac")),
               bench::ratio(col.ms(p + "/eager_jac"), col.ms(p + "/eager_obj")),
               bench::ratio(col.ms(p + "/npad_jac"), col.ms(p + "/npad_obj")), paper[i]});
  }
  std::cout << "\nTable 5: GMM Jacobians (A100 shapes, scaled)\n";
  t.print();

  bench::write_bench_json("table5_gmm", col, interp.stats().counters());
  return 0;
}
