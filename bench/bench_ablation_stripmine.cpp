// Ablation C (Section 4.3 / Fig. 4): the strip-mining time-space trade-off.
// A long scalar recurrence is differentiated with different strip-mine
// factors f; checkpoint memory falls from n to ~(n/f + f) loop-variant
// copies while the return sweep re-executes one extra nest level.

#include "common.hpp"

#include <functional>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/loopopt.hpp"
#include "runtime/interp.hpp"

using namespace npad;
using namespace npad::ir;

namespace {

Prog make_loop_prog(int64_t n, int factor) {
  ProgBuilder pb("recur");
  Var x0 = pb.param("x0", f64());
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(x0)}, ci64(n),
      [](Builder& c, Var, const std::vector<Var>& ps) {
        Var t = c.mul(ps[0], cf64(0.9999));
        return std::vector<Atom>{Atom(c.add(t, Atom(c.mul(c.sin(ps[0]), cf64(1e-4)))))};
      },
      factor);
  return pb.finish({Atom(outs[0])});
}

} // namespace

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  const int64_t n = 100000 * S;
  rt::Interp interp;

  const int factors[] = {0, 10, 100, 1000};
  std::vector<ir::Prog> grads;
  for (int f : factors) {
    Prog p = opt::apply_stripmining(make_loop_prog(n, f));
    typecheck(p);
    Prog g = ad::vjp(p);
    typecheck(g);
    grads.push_back(std::move(g));
  }

  for (size_t i = 0; i < grads.size(); ++i) {
    benchmark::RegisterBenchmark(("grad/f" + std::to_string(factors[i])).c_str(),
                                 [&, i](benchmark::State& st) {
                                   for (auto _ : st) {
                                     benchmark::DoNotOptimize(
                                         interp.run(grads[i], {1.0, 1.0}));
                                   }
                                 })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);
  }

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Strip-mine factor", "Gradient (ms)", "Checkpoint copies (analytic)"});
  for (size_t i = 0; i < grads.size(); ++i) {
    const int f = factors[i];
    const int64_t mem = f <= 1 ? n : n / f + f;
    t.add_row({f == 0 ? "none" : std::to_string(f),
               support::Table::fmt(col.ms("grad/f" + std::to_string(f))), std::to_string(mem)});
  }
  std::cout << "\nAblation C: strip-mining time-space trade-off (Fig. 4)\n";
  t.print();

  bench::write_bench_json("ablation_stripmine", col, interp.stats().counters());
  return 0;
}
