// Table 4 (Section 7.5): sparse (CSR) k-means on three synthetic workloads
// shaped after the paper's NLP datasets (movielens / nytimes / scrna),
// k = 10: manual CSR vs npad AD (CSR) vs eager autograd (COO, as PyTorch's
// sparse AD forces).

#include "common.hpp"

#include <functional>

#include "apps/kmeans.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(13);
  rt::Interp interp;
  ir::Prog cost_p = apps::kmeans_sparse_ir_cost();
  ir::typecheck(cost_p);
  ir::Prog grad_p = ad::vjp(cost_p);

  struct Workload {
    const char* name;
    int64_t n, d, nnz;
  };
  const Workload wls[] = {{"movielens (scaled)", 2048 * S, 512, 16},
                          {"nytimes (scaled)", 1024 * S, 1024, 24},
                          {"scrna (scaled)", 1024 * S, 512, 16}};

  std::vector<apps::KmeansSparseData> data;
  for (const auto& w : wls) data.push_back(apps::kmeans_sparse_gen(rng, w.n, w.d, 10, w.nnz));

  for (int i = 0; i < 3; ++i) {
    const auto& dt = data[static_cast<size_t>(i)];
    auto gargs = apps::kmeans_sparse_ir_args(dt);
    gargs.emplace_back(1.0);
    const std::string p = "w" + std::to_string(i);
    auto reg = [&](const std::string& name, std::function<void()> fn) {
      benchmark::RegisterBenchmark((p + "/" + name).c_str(), [fn](benchmark::State& st) {
        for (auto _ : st) fn();
      })->Unit(benchmark::kMillisecond)->MinTime(0.05);
    };
    reg("manual", [dt] { benchmark::DoNotOptimize(apps::kmeans_sparse_manual(dt)); });
    reg("ad", [&interp, &grad_p, gargs] { benchmark::DoNotOptimize(interp.run(grad_p, gargs)); });
    reg("eager", [dt] { benchmark::DoNotOptimize(apps::kmeans_sparse_eager(dt)); });
  }

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Workload", "Manual (ms)", "npad AD (ms)", "Eager COO (ms)",
                    "Paper (manual/AD/PyT, A100)"});
  const char* paper[] = {"61 / 152 / 61223 ms", "83 / 300 / 226896 ms", "156 / 579 / 367799 ms"};
  for (int i = 0; i < 3; ++i) {
    const std::string p = "w" + std::to_string(i);
    t.add_row({wls[i].name, support::Table::fmt(col.ms(p + "/manual")),
               support::Table::fmt(col.ms(p + "/ad")), support::Table::fmt(col.ms(p + "/eager")),
               paper[i]});
  }
  std::cout << "\nTable 4: sparse k-means gradients\n";
  t.print();

  bench::write_bench_json("table4_kmeans_sparse", col, interp.stats().counters());
  return 0;
}
