// Ablation B: the kernel-compiled map fast path ("scalars in registers", the
// CPU analogue of the paper's claim that the redundant-execution tape keeps
// scalars out of global memory). GMM objective and gradient with the kernel
// compiler enabled vs the environment-walking interpreter.

#include "common.hpp"

#include <functional>

#include "apps/gmm.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(29);
  auto g = apps::gmm_gen(rng, 512 * S, 16, 16);
  ir::Prog obj_p = apps::gmm_ir_objective();
  ir::typecheck(obj_p);
  ir::Prog grad_p = ad::vjp(obj_p);
  auto args = apps::gmm_ir_args(g);
  auto gargs = args;
  gargs.emplace_back(1.0);

  rt::Interp fast({.parallel = true, .use_kernels = true, .grain = 2048});
  rt::Interp slow({.parallel = true, .use_kernels = false, .grain = 2048});

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  };
  reg("obj/kernels", [&] { benchmark::DoNotOptimize(fast.run(obj_p, args)); });
  reg("obj/interp", [&] { benchmark::DoNotOptimize(slow.run(obj_p, args)); });
  reg("grad/kernels", [&] { benchmark::DoNotOptimize(fast.run(grad_p, gargs)); });
  reg("grad/interp", [&] { benchmark::DoNotOptimize(slow.run(grad_p, gargs)); });

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Program", "Kernel fast path (ms)", "Interpreted (ms)", "Speedup"});
  t.add_row({"GMM objective", support::Table::fmt(col.ms("obj/kernels")),
             support::Table::fmt(col.ms("obj/interp")),
             bench::ratio(col.ms("obj/interp"), col.ms("obj/kernels"))});
  t.add_row({"GMM gradient (vjp)", support::Table::fmt(col.ms("grad/kernels")),
             support::Table::fmt(col.ms("grad/interp")),
             bench::ratio(col.ms("grad/interp"), col.ms("grad/kernels"))});
  std::cout << "\nAblation B: kernel-compiled scalar maps vs interpreted maps\n";
  t.print();
  return 0;
}
