// Ablation B: the kernel-compiled map fast path ("scalars in registers", the
// CPU analogue of the paper's claim that the redundant-execution tape keeps
// scalars out of global memory), plus the process-wide kernel cache. GMM
// objective and gradient with the kernel compiler enabled vs the
// environment-walking interpreter, and a repeated-map workload (an iterative
// solver shape: the same small map launched hundreds of times) with the
// kernel cache enabled vs recompiling per launch.

#include "common.hpp"

#include <functional>

#include "apps/gmm.hpp"
#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

using namespace npad;
using namespace npad::ir;

namespace {

// loop k times: xs = map (\x -> long unrolled arithmetic chain) xs over a
// small array; return sum xs. Execution per launch is tiny while the lambda
// body is large, so per-launch kernel compilation dominates when the cache is
// off — the shape every iterative driver (k-means Newton, GMM fit, LSTM
// training) hammers: the same lambda relaunched every optimizer step.
Prog repeated_map_prog(int64_t iters, int unroll) {
  ProgBuilder pb("repeated_map");
  Var xs0 = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(xs0)}, ci64(iters), [&](Builder& c, Var, const std::vector<Var>& ps) {
        Var ys = c.map1(c.lam({f64()},
                              [&](Builder& k, const std::vector<Var>& p) {
                                Var t = p[0];
                                for (int j = 0; j < unroll; ++j) {
                                  const double cj = 1.0 + 1e-7 * static_cast<double>(j);
                                  t = k.add(k.mul(t, cf64(cj)), cf64(-1e-9 * j));
                                  t = k.max(k.min(t, cf64(1e12)), cf64(-1e12));
                                }
                                return std::vector<Atom>{Atom(t)};
                              }),
                        {ps[0]});
        return std::vector<Atom>{Atom(ys)};
      });
  Var s = b.reduce1(b.add_op(), cf64(0.0), {outs[0]});
  return pb.finish({Atom(s)});
}

} // namespace

int main(int argc, char** argv) {
  const int64_t S = bench::scale_factor();
  support::Rng rng(29);
  auto g = apps::gmm_gen(rng, 512 * S, 16, 16);
  ir::Prog obj_p = apps::gmm_ir_objective();
  ir::typecheck(obj_p);
  ir::Prog grad_p = ad::vjp(obj_p);
  auto args = apps::gmm_ir_args(g);
  auto gargs = args;
  gargs.emplace_back(1.0);

  ir::Prog rep_p = repeated_map_prog(256, 192);
  ir::typecheck(rep_p);
  std::vector<rt::Value> rep_args = {rt::make_f64_array(rng.normal_vec(2), {2})};

  rt::Interp fast({.parallel = true, .use_kernels = true, .grain = 2048});
  rt::Interp slow({.parallel = true, .use_kernels = false, .grain = 2048});
  rt::Interp nocache(
      {.parallel = true, .use_kernels = true, .use_kernel_cache = false, .grain = 2048});
  rt::Interp scalar_lanes(
      {.parallel = true, .use_kernels = true, .kernel_lanes = 1, .grain = 2048});
  rt::Interp novexec({.parallel = true, .use_kernels = true, .grain = 2048, .use_vexec = false});

  auto reg = [&](const char* name, std::function<void()> fn) {
    benchmark::RegisterBenchmark(name, [fn](benchmark::State& st) {
      for (auto _ : st) fn();
    })->Unit(benchmark::kMillisecond)->MinTime(0.1);
  };
  reg("obj/kernels", [&] { benchmark::DoNotOptimize(fast.run(obj_p, args)); });
  reg("obj/interp", [&] { benchmark::DoNotOptimize(slow.run(obj_p, args)); });
  reg("grad/kernels", [&] { benchmark::DoNotOptimize(fast.run(grad_p, gargs)); });
  reg("grad/interp", [&] { benchmark::DoNotOptimize(slow.run(grad_p, gargs)); });
  reg("repeat/cache", [&] { benchmark::DoNotOptimize(fast.run(rep_p, rep_args)); });
  reg("repeat/nocache", [&] { benchmark::DoNotOptimize(nocache.run(rep_p, rep_args)); });
  // Lane-width ablation: the same kernels at W=1 (scalar machine) vs the
  // default batched width.
  reg("obj/kernels-w1", [&] { benchmark::DoNotOptimize(scalar_lanes.run(obj_p, args)); });
  reg("grad/kernels-w1", [&] { benchmark::DoNotOptimize(scalar_lanes.run(grad_p, gargs)); });
  // Vectorized-tier ablation: the default path (vexec SIMD schedules; the
  // `fast` rows above) vs the same kernels pinned to the register machine.
  reg("obj/novexec", [&] { benchmark::DoNotOptimize(novexec.run(obj_p, args)); });
  reg("grad/novexec", [&] { benchmark::DoNotOptimize(novexec.run(grad_p, gargs)); });

  auto col = bench::run_benchmarks(argc, argv);

  support::Table t({"Program", "Fast path (ms)", "Baseline (ms)", "Speedup"});
  t.add_row({"GMM objective (kernels vs interp)", support::Table::fmt(col.ms("obj/kernels")),
             support::Table::fmt(col.ms("obj/interp")),
             bench::ratio(col.ms("obj/interp"), col.ms("obj/kernels"))});
  t.add_row({"GMM gradient (vjp, kernels vs interp)", support::Table::fmt(col.ms("grad/kernels")),
             support::Table::fmt(col.ms("grad/interp")),
             bench::ratio(col.ms("grad/interp"), col.ms("grad/kernels"))});
  t.add_row({"repeated map x256 (cache vs recompile)", support::Table::fmt(col.ms("repeat/cache")),
             support::Table::fmt(col.ms("repeat/nocache")),
             bench::ratio(col.ms("repeat/nocache"), col.ms("repeat/cache"))});
  t.add_row({"GMM objective (W=8 vs W=1 lanes)", support::Table::fmt(col.ms("obj/kernels")),
             support::Table::fmt(col.ms("obj/kernels-w1")),
             bench::ratio(col.ms("obj/kernels-w1"), col.ms("obj/kernels"))});
  t.add_row({"GMM gradient (W=8 vs W=1 lanes)", support::Table::fmt(col.ms("grad/kernels")),
             support::Table::fmt(col.ms("grad/kernels-w1")),
             bench::ratio(col.ms("grad/kernels-w1"), col.ms("grad/kernels"))});
  t.add_row({"GMM objective (vexec vs register machine)",
             support::Table::fmt(col.ms("obj/kernels")), support::Table::fmt(col.ms("obj/novexec")),
             bench::ratio(col.ms("obj/novexec"), col.ms("obj/kernels"))});
  t.add_row({"GMM gradient (vexec vs register machine)",
             support::Table::fmt(col.ms("grad/kernels")),
             support::Table::fmt(col.ms("grad/novexec")),
             bench::ratio(col.ms("grad/novexec"), col.ms("grad/kernels"))});
  std::cout << "\nAblation B: kernel-compiled scalar maps and the kernel cache\n";
  t.print();

  bench::write_bench_json("ablation_kernel", col, fast.stats().counters());
  return 0;
}
